/**
 * @file
 * Directed attack-scenario programs exercising the detection paths of
 * the paper:
 *   - heartbleed: the Listing-1 bug — an attacker-controlled memcpy
 *     length over-reads a heap buffer (Fig. 1),
 *   - heap overflow/underflow: sequential out-of-bounds writes/reads,
 *   - use-after-free and double free (temporal safety, §IV-A),
 *   - stack buffer overflow (Fig. 6 stack layout),
 *   - brute-force disarm (§V-B: disarming an unarmed location),
 *   - pad overflow: a small overflow that lands in the alignment pad,
 *     the documented false-negative gap (§V-C).
 *
 * Every builder returns an un-instrumented program; finalise with
 * runtime::applyScheme() for the scheme under test.
 */

#ifndef REST_WORKLOAD_ATTACK_SCENARIOS_HH
#define REST_WORKLOAD_ATTACK_SCENARIOS_HH

#include <cstdint>
#include <vector>

#include "isa/program.hh"

namespace rest::workload::attacks
{

/**
 * The Heartbleed pattern: allocate a request buffer of
 * 'benign_len' bytes, a response buffer of 'payload_len' bytes, then
 * memcpy(response, request, payload_len) with payload_len >
 * benign_len. A "secret" allocation adjacent to the request buffer
 * holds the byte pattern 0xA5. Under REST the over-read trips the
 * right redzone; unprotected, secret bytes are leaked into the
 * response.
 */
isa::Program heartbleed(std::uint32_t benign_len,
                        std::uint32_t payload_len);

/** Sequential heap overflow: write 'n' 8-byte words from buf[0]. */
isa::Program heapOverflowWrite(std::uint32_t buf_len, std::uint32_t n);

/**
 * Non-linear overflow: allocate a ('a_len' bytes) then b ('b_len'
 * bytes) and store at a[jump], choosing 'jump' to leap over any
 * redzone between them straight into b's live payload. Redzone-based
 * schemes (ASan, REST) never see it; whole-object colouring (MTE)
 * does.
 */
isa::Program heapJumpOverRedzone(std::uint32_t a_len,
                                 std::uint32_t b_len,
                                 std::uint32_t jump);

/**
 * Pointer-arithmetic evasion: load through a + (b - a), which
 * reconstructs b's pointer bit-exactly — tag and signature included —
 * from two live pointers. No scheme in the registry catches this.
 */
isa::Program pointerDiffJump(std::uint32_t a_len, std::uint32_t b_len);

/**
 * Pointer corruption: strip the metadata bits (tag/PAC) off a heap
 * pointer with a 48-bit mask — modelling a forged/leaked raw address
 * — and load through it. Address-based schemes see a valid location;
 * lock-and-key schemes see a key mismatch.
 */
isa::Program rawPointerLoad(std::uint32_t buf_len);

/**
 * UAF after the chunk has left quarantine and been recycled: free,
 * churn 'churn' malloc/free pairs of the same size, allocate once
 * more (recycling the chunk), then load through the stale pointer.
 */
isa::Program useAfterRecycle(std::uint32_t buf_len,
                             std::uint32_t churn);

/** Heap underflow read: load at buf[-offset]. */
isa::Program heapUnderflowRead(std::uint32_t buf_len,
                               std::uint32_t offset);

/** Use-after-free: malloc, free, then load through the stale ptr. */
isa::Program useAfterFree(std::uint32_t buf_len);

/** Double free of the same allocation. */
isa::Program doubleFree(std::uint32_t buf_len);

/**
 * Stack overflow: a leaf function with a 'buf_len'-byte buffer writes
 * 'n' 8-byte words from buf[0] upward.
 */
isa::Program stackOverflowWrite(std::uint32_t buf_len, std::uint32_t n);

/**
 * Brute-force disarm (§V-B): the program executes a disarm on a heap
 * location that holds no token, modelling an attacker guessing armed
 * addresses through a disarm gadget.
 */
isa::Program bruteForceDisarm();

/**
 * strcpy overflow: copy a 'str_len'-byte string (plus NUL) into a
 * 'buf_len'-byte heap buffer through the unbounded libc strcpy.
 */
isa::Program strcpyOverflow(std::uint32_t buf_len,
                            std::uint32_t str_len);

/**
 * Pad overflow (§V-C false negative): overflow a stack buffer by
 * 'overflow_bytes' — if that lands inside the alignment pad rather
 * than the token granule, REST does not detect it.
 */
isa::Program stackPadOverflow(std::uint32_t buf_len,
                              std::uint32_t overflow_bytes);

// --- Concurrency scenarios (one program per core) ---
//
// The two-core builders below return {producer, accomplice} program
// pairs for the multicore machine (sim/multicore.hh). Cores
// synchronise through a spin-flag mailbox in the guest globals
// segment, so the attack interleaving is deterministic under the
// round-robin scheduler: hand-off strictly precedes the free, the
// free strictly precedes the victim access.

/**
 * Cross-thread use-after-free: core 0 allocates a buffer, hands the
 * pointer to core 1, waits for the ack, then frees it; core 1 loads
 * through the received pointer only after the free has retired. The
 * dangling access happens on a different core (and L1) than both the
 * allocation and the free.
 */
std::vector<isa::Program> crossThreadUseAfterFree(std::uint32_t buf_len);

/**
 * Racy double free: core 0 allocates, hands the pointer over, frees;
 * core 1 then frees the same chunk again — the classic TOCTOU bug of
 * two request handlers both believing they own the object.
 */
std::vector<isa::Program> racyDoubleFree(std::uint32_t buf_len);

/**
 * Hand-off-then-overflow: core 0 allocates a 'buf_len'-byte buffer
 * and hands it to core 1, which (trusting the producer's length
 * field) writes 'n' 8-byte words from buf[0] — a linear overflow on a
 * core that never saw the allocation.
 */
std::vector<isa::Program> handoffThenOverflow(std::uint32_t buf_len,
                                              std::uint32_t n);

} // namespace rest::workload::attacks

#endif // REST_WORKLOAD_ATTACK_SCENARIOS_HH
