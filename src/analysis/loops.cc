#include "analysis/loops.hh"

#include <algorithm>
#include <map>
#include <sstream>

namespace rest::analysis
{

LoopForest::LoopForest(const Cfg &cfg, const DomTree &dom)
{
    const auto &blocks = cfg.blocks();
    const auto &rpo = cfg.rpo();

    std::vector<int> rpo_index(blocks.size(), -1);
    for (std::size_t i = 0; i < rpo.size(); ++i)
        rpo_index[static_cast<std::size_t>(rpo[i])] =
            static_cast<int>(i);

    // Classify edges among reachable blocks: an edge u -> v with
    // rpo(v) <= rpo(u) retreats; it is a back edge iff v dominates u,
    // and any other retreating edge witnesses irreducibility.
    std::map<int, std::vector<int>> latches_of; // header -> latches
    for (int u : rpo) {
        for (int v : blocks[static_cast<std::size_t>(u)].succs) {
            if (!cfg.reachable()[static_cast<std::size_t>(v)])
                continue;
            if (rpo_index[static_cast<std::size_t>(v)] >
                rpo_index[static_cast<std::size_t>(u)])
                continue; // forward or cross edge
            if (dom.dominates(v, u))
                latches_of[v].push_back(u);
            else
                irreducible_ = true;
        }
    }

    // Body of each loop: backward reachability from the latches,
    // stopping at the header.
    for (auto &[header, latches] : latches_of) {
        Loop loop;
        loop.header = header;
        std::sort(latches.begin(), latches.end());
        loop.latches = latches;
        loop.blocks.insert(header);
        std::vector<int> work;
        for (int latch : latches) {
            if (loop.blocks.insert(latch).second)
                work.push_back(latch);
        }
        while (!work.empty()) {
            int b = work.back();
            work.pop_back();
            for (int p : blocks[static_cast<std::size_t>(b)].preds) {
                if (!cfg.reachable()[static_cast<std::size_t>(p)])
                    continue;
                if (loop.blocks.insert(p).second)
                    work.push_back(p);
            }
        }
        loops_.push_back(std::move(loop));
    }

    // Nesting: the parent of a loop is the smallest other loop that
    // strictly contains its body (equal bodies cannot happen — the
    // headers would coincide and the loops would have been merged).
    for (std::size_t i = 0; i < loops_.size(); ++i) {
        int best = -1;
        for (std::size_t j = 0; j < loops_.size(); ++j) {
            if (i == j)
                continue;
            const auto &inner = loops_[i].blocks;
            const auto &outer = loops_[j].blocks;
            if (outer.size() <= inner.size())
                continue;
            if (!std::includes(outer.begin(), outer.end(),
                               inner.begin(), inner.end()))
                continue;
            if (best < 0 || outer.size() <
                    loops_[static_cast<std::size_t>(best)].blocks.size())
                best = static_cast<int>(j);
        }
        loops_[i].parent = best;
    }
    for (auto &loop : loops_) {
        int depth = 1;
        for (int p = loop.parent; p >= 0;
             p = loops_[static_cast<std::size_t>(p)].parent)
            ++depth;
        loop.depth = depth;
    }
}

int
LoopForest::innermostLoopOf(int block) const
{
    int best = -1;
    for (std::size_t i = 0; i < loops_.size(); ++i) {
        if (!loops_[i].contains(block))
            continue;
        if (best < 0 ||
            loops_[i].blocks.size() <
                loops_[static_cast<std::size_t>(best)].blocks.size())
            best = static_cast<int>(i);
    }
    return best;
}

std::string
LoopForest::toString() const
{
    std::ostringstream os;
    for (std::size_t i = 0; i < loops_.size(); ++i) {
        const Loop &loop = loops_[i];
        os << "loop" << i << ": header=b" << loop.header
           << " depth=" << loop.depth;
        if (loop.parent >= 0)
            os << " parent=loop" << loop.parent;
        os << " latches={";
        for (std::size_t k = 0; k < loop.latches.size(); ++k)
            os << (k ? "," : "") << "b" << loop.latches[k];
        os << "} body={";
        bool first = true;
        for (int b : loop.blocks) {
            os << (first ? "" : ",") << "b" << b;
            first = false;
        }
        os << "}\n";
    }
    if (irreducible_)
        os << "irreducible\n";
    return os.str();
}

} // namespace rest::analysis
