#include "analysis/verifier.hh"

#include <optional>
#include <set>
#include <sstream>

#include "analysis/cfg.hh"
#include "analysis/check_facts.hh"
#include "analysis/dataflow.hh"
#include "analysis/dominators.hh"
#include "util/logging.hh"

namespace rest::analysis
{

using isa::Function;
using isa::Inst;
using isa::Opcode;
using isa::OpSource;

const char *
diagKindName(DiagKind kind)
{
    switch (kind) {
      case DiagKind::EmptyFunction: return "EmptyFunction";
      case DiagKind::MissingExit: return "MissingExit";
      case DiagKind::MultipleExits: return "MultipleExits";
      case DiagKind::BranchTargetOutOfRange:
        return "BranchTargetOutOfRange";
      case DiagKind::BranchIntoExit: return "BranchIntoExit";
      case DiagKind::CallTargetOutOfRange:
        return "CallTargetOutOfRange";
      case DiagKind::BadBufId: return "BadBufId";
      case DiagKind::UnreachableExit: return "UnreachableExit";
      case DiagKind::UnresolvedBufId: return "UnresolvedBufId";
      case DiagKind::UncheckedAccess: return "UncheckedAccess";
      case DiagKind::DoubleArm: return "DoubleArm";
      case DiagKind::DisarmWithoutArm: return "DisarmWithoutArm";
      case DiagKind::ArmedAtExit: return "ArmedAtExit";
      case DiagKind::UnknownArmAddress: return "UnknownArmAddress";
      case DiagKind::BufferOutsideFrame: return "BufferOutsideFrame";
      case DiagKind::BufferOverlap: return "BufferOverlap";
      case DiagKind::RedzoneOverlapsBuffer:
        return "RedzoneOverlapsBuffer";
      case DiagKind::HoistedGroupMalformed:
        return "HoistedGroupMalformed";
      case DiagKind::HoistNotDominating: return "HoistNotDominating";
      case DiagKind::HoistedFactUnavailable:
        return "HoistedFactUnavailable";
    }
    return "<bad DiagKind>";
}

std::string
Diagnostic::toString() const
{
    std::ostringstream os;
    os << "[" << diagKindName(kind) << "] " << message;
    return os.str();
}

std::string
formatDiagnostics(const std::vector<Diagnostic> &diags)
{
    std::ostringstream os;
    for (std::size_t i = 0; i < diags.size(); ++i)
        os << (i ? "\n" : "") << diags[i].toString();
    return os.str();
}

namespace
{

/** Append a diagnostic, prefixing the message with its location. */
template <typename... Args>
void
report(std::vector<Diagnostic> &out, DiagKind kind, const Function &fn,
       std::size_t func_idx, int inst, Args &&...args)
{
    std::ostringstream os;
    os << fn.name;
    if (inst >= 0)
        os << " inst " << inst;
    os << ": ";
    (os << ... << std::forward<Args>(args));
    out.push_back({kind, func_idx, inst, os.str()});
}

/**
 * Structural contract of one function. 'pre' selects the
 * pre-instrumentation flavour (symbolic bufIds must be in range)
 * over the post-instrumentation one (bufIds must be resolved).
 * Returns true when the function is structurally sound, i.e. safe to
 * build a Cfg for.
 */
bool
checkStructure(const isa::Program &program, std::size_t func_idx,
               bool pre, std::vector<Diagnostic> &out)
{
    const Function &fn = program.funcs[func_idx];
    const int n = static_cast<int>(fn.insts.size());
    if (n == 0) {
        report(out, DiagKind::EmptyFunction, fn, func_idx, -1,
               "function has no instructions");
        return false;
    }

    bool sound = true;
    const Opcode last = fn.insts.back().op;
    if (last != Opcode::Ret && last != Opcode::Halt) {
        report(out, DiagKind::MissingExit, fn, func_idx, n - 1,
               "function must end in ret/halt, ends in ",
               isa::mnemonic(last));
        sound = false;
    }

    for (int i = 0; i < n; ++i) {
        const Inst &inst = fn.insts[i];
        if ((inst.op == Opcode::Ret || inst.op == Opcode::Halt) &&
            i != n - 1) {
            report(out, DiagKind::MultipleExits, fn, func_idx, i,
                   "extra ", isa::mnemonic(inst.op),
                   " before the trailing exit");
            sound = false;
        }
        if (hasBranchTarget(inst.op)) {
            if (inst.target < 0 || inst.target >= n) {
                report(out, DiagKind::BranchTargetOutOfRange, fn,
                       func_idx, i, "branch target ", inst.target,
                       " outside [0, ", n, ")");
                sound = false;
            } else if (inst.target == n - 1 &&
                       (last == Opcode::Ret || last == Opcode::Halt)) {
                report(out, DiagKind::BranchIntoExit, fn, func_idx, i,
                       "branch targets the trailing exit; the "
                       "instrumentation contract forbids this");
                sound = false;
            }
        }
        if (inst.op == Opcode::Call &&
            (inst.target < 0 || static_cast<std::size_t>(inst.target) >=
                                    program.funcs.size())) {
            report(out, DiagKind::CallTargetOutOfRange, fn, func_idx, i,
                   "call target ", inst.target, " outside [0, ",
                   program.funcs.size(), ")");
        }
        if (pre) {
            if (inst.bufId >= 0 &&
                static_cast<std::size_t>(inst.bufId) >= fn.bufs.size()) {
                report(out, DiagKind::BadBufId, fn, func_idx, i,
                       "stack-buffer reference #", inst.bufId,
                       " out of range (function has ", fn.bufs.size(),
                       " buffers)");
            }
        } else if (inst.bufId >= 0) {
            report(out, DiagKind::UnresolvedBufId, fn, func_idx, i,
                   "symbolic stack-buffer reference #", inst.bufId,
                   " survived the layout pass");
        }
    }

    if (sound) {
        Cfg cfg(fn);
        if (!cfg.reachable()[cfg.blockOf(n - 1)]) {
            report(out, DiagKind::UnreachableExit, fn, func_idx, n - 1,
                   "the trailing exit is unreachable from entry");
            sound = false;
        }
    }
    return sound;
}

// ---------------------------------------------------------------------
// ASan access coverage
// ---------------------------------------------------------------------

void
checkAccessCoverage(const Cfg &cfg, std::size_t func_idx,
                    std::vector<Diagnostic> &out)
{
    const Function &fn = cfg.function();
    ForwardSolver<CheckFactsDomain> solver(cfg, CheckFactsDomain(fn));
    for (int b : cfg.rpo()) {
        solver.scan(b, [&](const CheckFactsDomain::State &st,
                           const Inst &inst, int idx) {
            if (inst.tag != OpSource::Program ||
                (inst.op != Opcode::Load && inst.op != Opcode::Store)) {
                return;
            }
            CheckFact want{inst.rs1, inst.imm, inst.width};
            if (!st || !anyCovers(*st, want)) {
                report(out, DiagKind::UncheckedAccess, fn, func_idx,
                       idx, isa::mnemonic(inst.op), " of [r",
                       int(inst.rs1), (inst.imm >= 0 ? "+" : ""),
                       inst.imm, ", +", int(inst.width),
                       ") is not covered by a shadow check on every "
                       "path");
            }
        });
    }
}

// ---------------------------------------------------------------------
// REST arm/disarm pairing
// ---------------------------------------------------------------------

/**
 * The fp-relative offset an instrumentation-inserted Arm/Disarm at
 * 'idx' targets, resolved from the adjacent "addi rX, fp, K" the
 * arming pass emits; nullopt if the address is not of that shape.
 */
std::optional<std::int64_t>
armOffsetAt(const Function &fn, int idx)
{
    const Inst &inst = fn.insts[idx];
    if (idx == 0)
        return std::nullopt;
    const Inst &prev = fn.insts[static_cast<std::size_t>(idx) - 1];
    if (prev.op == Opcode::AddI && prev.rd == inst.rs1 &&
        prev.rs1 == isa::regFp && prev.bufId < 0) {
        return prev.imm;
    }
    return std::nullopt;
}

/** Pairing state: must-armed (intersection) and may-armed (union). */
struct ArmState
{
    /** nullopt is TOP (meet identity of the intersection). */
    std::optional<std::set<std::int64_t>> must;
    std::set<std::int64_t> may;

    bool operator==(const ArmState &) const = default;
};

struct ArmDomain
{
    using State = ArmState;

    explicit ArmDomain(const Function &fn)
    {
        offsets.assign(fn.insts.size(), std::nullopt);
        for (std::size_t i = 0; i < fn.insts.size(); ++i) {
            const Inst &inst = fn.insts[i];
            if ((inst.op == Opcode::Arm || inst.op == Opcode::Disarm) &&
                inst.tag == OpSource::StackSetup) {
                offsets[i] = armOffsetAt(fn, static_cast<int>(i));
            }
        }
    }

    State boundary() const { return {std::set<std::int64_t>{}, {}}; }
    State top() const { return {std::nullopt, {}}; }

    void
    meet(State &into, const State &from) const
    {
        if (from.must) {
            if (!into.must) {
                into.must = from.must;
            } else {
                std::set<std::int64_t> kept;
                for (std::int64_t off : *into.must) {
                    if (from.must->count(off))
                        kept.insert(off);
                }
                *into.must = std::move(kept);
            }
        }
        into.may.insert(from.may.begin(), from.may.end());
    }

    void
    transfer(State &st, const Inst &inst, int idx) const
    {
        auto off = offsets[static_cast<std::size_t>(idx)];
        if (!off)
            return;
        if (inst.op == Opcode::Arm) {
            if (st.must)
                st.must->insert(*off);
            st.may.insert(*off);
        } else if (inst.op == Opcode::Disarm) {
            if (st.must)
                st.must->erase(*off);
            st.may.erase(*off);
        }
    }

    /** Resolved fp offsets of StackSetup arms/disarms, by inst idx. */
    std::vector<std::optional<std::int64_t>> offsets;
};

void
checkArmPairing(const Cfg &cfg, std::size_t func_idx,
                std::vector<Diagnostic> &out)
{
    const Function &fn = cfg.function();
    ArmDomain domain(fn);
    ForwardSolver<ArmDomain> solver(cfg, domain);
    for (int b : cfg.rpo()) {
        solver.scan(b, [&](const ArmState &st, const Inst &inst,
                           int idx) {
            bool is_arm_op =
                inst.op == Opcode::Arm || inst.op == Opcode::Disarm;
            if (is_arm_op && inst.tag == OpSource::StackSetup) {
                auto off = armOffsetAt(fn, idx);
                if (!off) {
                    report(out, DiagKind::UnknownArmAddress, fn,
                           func_idx, idx, isa::mnemonic(inst.op),
                           " address is not fp+constant; pairing "
                           "cannot be verified");
                    return;
                }
                if (inst.op == Opcode::Arm && st.may.count(*off)) {
                    report(out, DiagKind::DoubleArm, fn, func_idx, idx,
                           "granule fp+", *off,
                           " may already be armed here");
                } else if (inst.op == Opcode::Disarm && st.must &&
                           !st.must->count(*off)) {
                    report(out, DiagKind::DisarmWithoutArm, fn,
                           func_idx, idx, "granule fp+", *off,
                           " is not armed on every path to this "
                           "disarm");
                }
            }
            if ((inst.op == Opcode::Ret || inst.op == Opcode::Halt) &&
                !st.may.empty()) {
                std::ostringstream offs;
                for (std::int64_t off : st.may)
                    offs << " fp+" << off;
                report(out, DiagKind::ArmedAtExit, fn, func_idx, idx,
                       "granules still armed at function exit:",
                       offs.str());
            }
        });
    }
}

// ---------------------------------------------------------------------
// Frame layout
// ---------------------------------------------------------------------

/** One decoded protected frame region. */
struct FrameRegion
{
    std::int64_t begin;
    std::int64_t end;
    int inst; ///< where it was decoded (diagnostics)
};

/** Armed granules: every "addi rX, fp, K; arm rX" StackSetup pair. */
std::vector<FrameRegion>
decodeArmedRegions(const Function &fn, unsigned granule)
{
    std::vector<FrameRegion> regions;
    for (std::size_t i = 0; i < fn.insts.size(); ++i) {
        const Inst &inst = fn.insts[i];
        if (inst.op != Opcode::Arm || inst.tag != OpSource::StackSetup)
            continue;
        if (auto off = armOffsetAt(fn, static_cast<int>(i))) {
            regions.push_back({*off, *off + granule,
                               static_cast<int>(i)});
        }
    }
    return regions;
}

/**
 * ASan poison regions: the emitPoison() sequence with a non-zero
 * pattern (zero patterns are the epilogue unpoison). Each 4-byte
 * shadow store covers 32 application bytes.
 */
std::vector<FrameRegion>
decodePoisonRegions(const Function &fn)
{
    std::vector<FrameRegion> regions;
    const auto &insts = fn.insts;
    const std::size_t n = insts.size();
    for (std::size_t i = 0; i + 4 < n; ++i) {
        const Inst &base = insts[i];
        if (base.op != Opcode::AddI || base.rd != rCheckScratchB ||
            base.rs1 != isa::regFp ||
            base.tag != OpSource::StackSetup) {
            continue;
        }
        const Inst &shr = insts[i + 1];
        const Inst &bias = insts[i + 2];
        const Inst &pat = insts[i + 3];
        if (shr.op != Opcode::ShrI || shr.rd != rCheckScratchB ||
            bias.op != Opcode::AddI || bias.rd != rCheckScratchB ||
            pat.op != Opcode::MovImm || pat.rd != rCheckScratchA) {
            continue;
        }
        std::size_t stores = 0;
        while (i + 4 + stores < n) {
            const Inst &st = insts[i + 4 + stores];
            if (st.op == Opcode::Store && st.rs1 == rCheckScratchB &&
                st.rs2 == rCheckScratchA && st.width == 4 &&
                st.tag == OpSource::StackSetup) {
                ++stores;
            } else {
                break;
            }
        }
        if (stores == 0)
            continue;
        if ((pat.imm & 0xff) != 0) {
            regions.push_back({base.imm,
                               base.imm +
                                   static_cast<std::int64_t>(32 * stores),
                               static_cast<int>(i)});
        }
        i += 3 + stores;
    }
    return regions;
}

void
checkFrameLayout(const Function &fn, std::size_t func_idx,
                 unsigned granule, std::vector<Diagnostic> &out)
{
    // Buffers inside the frame and pairwise disjoint.
    for (std::size_t a = 0; a < fn.bufs.size(); ++a) {
        const isa::StackBuf &buf = fn.bufs[a];
        std::int64_t begin = buf.offset;
        std::int64_t end = buf.offset + buf.size;
        if (begin < 0 || end > fn.frameSize) {
            report(out, DiagKind::BufferOutsideFrame, fn, func_idx, -1,
                   "buffer #", a, " [", begin, ", ", end,
                   ") exceeds the frame [0, ", fn.frameSize, ")");
        }
        for (std::size_t b = a + 1; b < fn.bufs.size(); ++b) {
            const isa::StackBuf &other = fn.bufs[b];
            if (begin < other.offset + other.size &&
                other.offset < end) {
                report(out, DiagKind::BufferOverlap, fn, func_idx, -1,
                       "buffer #", a, " [", begin, ", ", end,
                       ") overlaps buffer #", b, " [", other.offset,
                       ", ", other.offset + other.size, ")");
            }
        }
    }

    // Redzones (armed granules and ASan poison) against live buffers.
    std::vector<FrameRegion> redzones = decodeArmedRegions(fn, granule);
    std::vector<FrameRegion> poison = decodePoisonRegions(fn);
    redzones.insert(redzones.end(), poison.begin(), poison.end());
    for (const FrameRegion &rz : redzones) {
        for (std::size_t a = 0; a < fn.bufs.size(); ++a) {
            const isa::StackBuf &buf = fn.bufs[a];
            if (rz.begin < buf.offset + buf.size &&
                buf.offset < rz.end) {
                report(out, DiagKind::RedzoneOverlapsBuffer, fn,
                       func_idx, rz.inst, "redzone [", rz.begin, ", ",
                       rz.end, ") overlaps buffer #", a, " [",
                       buf.offset, ", ", buf.offset + buf.size, ")");
            }
        }
    }
}

} // namespace

std::vector<Diagnostic>
verifyGeneratorContract(const isa::Program &program)
{
    std::vector<Diagnostic> out;
    for (std::size_t fi = 0; fi < program.funcs.size(); ++fi)
        checkStructure(program, fi, /*pre=*/true, out);
    return out;
}

std::vector<Diagnostic>
verify(const isa::Program &program, const VerifyOptions &opts)
{
    std::vector<Diagnostic> out;
    for (std::size_t fi = 0; fi < program.funcs.size(); ++fi) {
        if (!checkStructure(program, fi, /*pre=*/false, out))
            continue; // not safe to build a CFG
        const Function &fn = program.funcs[fi];
        Cfg cfg(fn);
        if (opts.expectAsanChecks)
            checkAccessCoverage(cfg, fi, out);
        if (opts.expectArming)
            checkArmPairing(cfg, fi, out);
        if (opts.checkLayout)
            checkFrameLayout(fn, fi, opts.tokenGranule, out);
    }
    return out;
}

std::vector<Diagnostic>
verifyHoistedChecks(const isa::Function &fn, std::size_t func_idx,
                    const std::vector<HoistRecord> &records)
{
    std::vector<Diagnostic> out;
    if (records.empty())
        return out;
    Cfg cfg(fn);
    DomTree dom(cfg);
    ForwardSolver<CheckFactsDomain> solver(cfg, CheckFactsDomain(fn));
    const int n = static_cast<int>(fn.insts.size());

    for (const HoistRecord &rec : records) {
        auto group = rec.preheaderAt >= 0 && rec.preheaderAt < n
            ? matchCheckGroup(fn, rec.preheaderAt)
            : std::nullopt;
        if (!group || !(group->fact == rec.fact)) {
            report(out, DiagKind::HoistedGroupMalformed, fn, func_idx,
                   rec.preheaderAt, "hoist record for base r",
                   int(rec.fact.base), " window [",
                   rec.fact.offset, ", +", int(rec.fact.width),
                   ") does not name a matching preheader group");
            continue;
        }
        const int pre_block = cfg.blockOf(rec.preheaderAt);
        for (int site : rec.guardedSites) {
            if (site < 0 || site >= n) {
                report(out, DiagKind::HoistedGroupMalformed, fn,
                       func_idx, site, "guarded site out of range");
                continue;
            }
            const int site_block = cfg.blockOf(site);
            if (!dom.dominates(pre_block, site_block)) {
                report(out, DiagKind::HoistNotDominating, fn, func_idx,
                       site, "preheader group at inst ",
                       rec.preheaderAt,
                       " does not dominate the site it replaced");
                continue;
            }
            bool available = false;
            solver.scan(site_block,
                        [&](const CheckFactsDomain::State &st,
                            const Inst &, int idx) {
                            if (idx == site && st &&
                                anyCovers(*st, rec.fact))
                                available = true;
                        });
            if (!available) {
                report(out, DiagKind::HoistedFactUnavailable, fn,
                       func_idx, site, "hoisted window [base r",
                       int(rec.fact.base), (rec.fact.offset >= 0 ?
                       "+" : ""), rec.fact.offset, ", +",
                       int(rec.fact.width),
                       ") is not available on every path to the site "
                       "it replaced");
            }
        }
    }
    return out;
}

} // namespace rest::analysis
