/**
 * @file
 * Shared instruction-vector rewriting for the check-optimizer passes.
 *
 * Both the redundant-check elision pass and the loop hoisting pass
 * delete whole shadow-check groups, and hoisting additionally splices
 * a synthesized preheader into the middle of a function. Every such
 * edit invalidates branch targets (targets are instruction indices),
 * so the remapping rules live here once:
 *
 *  - deleteInstructions(): drop every marked instruction and remap
 *    branch targets forward to the first survivor. A target whose
 *    entire suffix is marked (a deleted group at the very end of the
 *    function) is *rescued*: the marked run containing the target is
 *    kept instead of crashing, so callers may mark trailing groups
 *    freely.
 *
 *  - insertInstructions(): splice a block of instructions before an
 *    index. Branches that target the splice point choose, per branch
 *    site, whether to enter the inserted code (loop-entry edges fall
 *    into a preheader) or skip it (back edges re-enter the loop
 *    header behind the preheader).
 *
 * Both return an old-index -> new-index map so callers can translate
 * any instruction indices they recorded before the edit (the hoist
 * pass threads its audit records through consecutive edits this way).
 */

#ifndef REST_ANALYSIS_REWRITE_HH
#define REST_ANALYSIS_REWRITE_HH

#include <functional>
#include <vector>

#include "isa/program.hh"

namespace rest::analysis
{

/** Result of one in-place instruction-vector edit. */
struct RewriteMap
{
    /**
     * oldToNew[i] is the post-edit index of pre-edit instruction i.
     * For a deleted instruction it is the post-edit index of the
     * first survivor at or after i (how branch targets were remapped);
     * every pre-edit index therefore maps to a valid post-edit index.
     */
    std::vector<int> oldToNew;

    /** Number of instructions actually removed (deletions only). */
    std::size_t removed = 0;

    int translate(int old_idx) const { return oldToNew.at(old_idx); }
};

/**
 * Remove every instruction whose 'marked' bit is set, remapping
 * branch targets forward to the first survivor. Marked runs that
 * would leave a branch target with no survivor after it (a marked
 * group ending the function) are unmarked and kept; 'marked' is
 * updated in place to reflect what was really deleted.
 */
RewriteMap deleteInstructions(isa::Function &fn,
                              std::vector<bool> &marked);

/**
 * Insert 'insts' immediately before index 'pos' (0 <= pos <=
 * fn.insts.size()). Branch targets strictly beyond 'pos' shift by the
 * inserted length; targets exactly at 'pos' consult
 * skipInserted(branch_inst_idx) — true retargets past the splice
 * (back edges), false leaves the branch entering it (loop-entry
 * edges). Targets of the inserted instructions themselves are taken
 * as already-final post-edit indices. The returned map reports where
 * each *pre-edit* instruction landed.
 */
RewriteMap insertInstructions(
    isa::Function &fn, int pos, const std::vector<isa::Inst> &insts,
    const std::function<bool(int)> &skipInserted);

} // namespace rest::analysis

#endif // REST_ANALYSIS_REWRITE_HH
