#include "analysis/cfg.hh"

#include <algorithm>
#include <sstream>

#include "util/logging.hh"

namespace rest::analysis
{

using isa::Inst;
using isa::Opcode;

bool
isBlockTerminator(Opcode op)
{
    switch (op) {
      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Blt:
      case Opcode::Bge:
      case Opcode::Jmp:
      case Opcode::Ret:
      case Opcode::Halt:
        return true;
      default:
        // Call transfers to another function and falls through here,
        // so it does not end an intra-procedural block.
        return false;
    }
}

bool
hasBranchTarget(Opcode op)
{
    switch (op) {
      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Blt:
      case Opcode::Bge:
      case Opcode::Jmp:
        return true;
      default:
        return false;
    }
}

bool
fallsThrough(Opcode op)
{
    return op != Opcode::Jmp && op != Opcode::Ret && op != Opcode::Halt;
}

Cfg::Cfg(const isa::Function &fn) : fn_(&fn)
{
    const auto &insts = fn.insts;
    const int n = static_cast<int>(insts.size());
    rest_assert(n > 0, "CFG of empty function ", fn.name);

    // 1. Leaders: entry, branch targets, instructions after control
    //    transfers.
    std::vector<bool> leader(insts.size(), false);
    leader[0] = true;
    for (int i = 0; i < n; ++i) {
        const Inst &inst = insts[i];
        if (hasBranchTarget(inst.op)) {
            rest_assert(inst.target >= 0 && inst.target < n,
                        "branch target ", inst.target,
                        " out of range in ", fn.name,
                        " (run the structural verifier first)");
            leader[inst.target] = true;
        }
        if (isBlockTerminator(inst.op) && i + 1 < n)
            leader[i + 1] = true;
    }

    // 2. Blocks and the instruction -> block map.
    blockOf_.assign(insts.size(), -1);
    for (int i = 0; i < n; ++i) {
        if (leader[i]) {
            BasicBlock bb;
            bb.first = i;
            blocks_.push_back(bb);
        }
        blockOf_[i] = static_cast<int>(blocks_.size()) - 1;
        blocks_.back().last = i;
    }

    // 3. Edges.
    for (std::size_t b = 0; b < blocks_.size(); ++b) {
        const Inst &term = insts[blocks_[b].last];
        auto link = [this, b](int succ) {
            blocks_[b].succs.push_back(succ);
            blocks_[succ].preds.push_back(static_cast<int>(b));
        };
        if (hasBranchTarget(term.op))
            link(blockOf_[term.target]);
        if (fallsThrough(term.op) && blocks_[b].last + 1 < n)
            link(blockOf_[blocks_[b].last + 1]);
    }

    // 4. Reachability and reverse postorder, via one iterative DFS
    //    from the entry block.
    reachable_.assign(blocks_.size(), false);
    std::vector<int> postorder;
    // Stack entries: (block, next successor slot to visit).
    std::vector<std::pair<int, std::size_t>> stack;
    reachable_[0] = true;
    stack.emplace_back(0, 0);
    while (!stack.empty()) {
        auto &[b, slot] = stack.back();
        if (slot < blocks_[b].succs.size()) {
            int succ = blocks_[b].succs[slot++];
            if (!reachable_[succ]) {
                reachable_[succ] = true;
                stack.emplace_back(succ, 0);
            }
        } else {
            postorder.push_back(b);
            stack.pop_back();
        }
    }
    rpo_.assign(postorder.rbegin(), postorder.rend());
}

std::string
Cfg::toString() const
{
    std::ostringstream os;
    os << "cfg " << fn_->name << ": " << blocks_.size() << " blocks\n";
    for (std::size_t b = 0; b < blocks_.size(); ++b) {
        os << "  b" << b << " [" << blocks_[b].first << ".."
           << blocks_[b].last << "] ->";
        for (int succ : blocks_[b].succs)
            os << " b" << succ;
        if (!reachable_[b])
            os << "  ; unreachable";
        os << "\n";
    }
    return os.str();
}

} // namespace rest::analysis
