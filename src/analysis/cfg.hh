/**
 * @file
 * Per-function control-flow graph over the mini-ISA.
 *
 * A Cfg partitions a Function's instruction vector into maximal basic
 * blocks (leaders at index 0, at every branch/jump target, and after
 * every control transfer), records successor/predecessor edges, and
 * computes reachability plus a reverse-postorder traversal of the
 * reachable subgraph. It is the substrate for the dominator tree
 * (analysis/dominators.hh), the dataflow solver (analysis/dataflow.hh)
 * and their clients, the instrumentation verifier and the
 * redundant-check elision pass.
 *
 * Precondition: every intra-function branch target must be a valid
 * instruction index. Callers that cannot guarantee this (e.g. the
 * verifier, which diagnoses exactly such programs) must run the
 * structural checks of analysis/verifier.hh first.
 */

#ifndef REST_ANALYSIS_CFG_HH
#define REST_ANALYSIS_CFG_HH

#include <string>
#include <vector>

#include "isa/program.hh"

namespace rest::analysis
{

/** True for ops that end a basic block (Call falls through). */
bool isBlockTerminator(isa::Opcode op);

/** True for ops whose 'target' is an intra-function branch target. */
bool hasBranchTarget(isa::Opcode op);

/** True when control can fall through the op to the next inst. */
bool fallsThrough(isa::Opcode op);

/** One maximal basic block: the inclusive range [first, last]. */
struct BasicBlock
{
    int first = 0;             ///< index of the leader instruction
    int last = 0;              ///< index of the final instruction
    std::vector<int> succs;    ///< successor block ids
    std::vector<int> preds;    ///< predecessor block ids
};

/** Control-flow graph of one function. */
class Cfg
{
  public:
    /** Build the CFG of 'fn'; the function must outlive the Cfg. */
    explicit Cfg(const isa::Function &fn);

    const isa::Function &function() const { return *fn_; }

    const std::vector<BasicBlock> &blocks() const { return blocks_; }

    /** Block id containing instruction 'inst'. */
    int blockOf(int inst) const { return blockOf_.at(inst); }

    /** Per-block reachability from the entry block. */
    const std::vector<bool> &reachable() const { return reachable_; }

    /**
     * Reachable blocks in reverse postorder (entry first); the
     * iteration order used by the dominator and dataflow fixpoints.
     */
    const std::vector<int> &rpo() const { return rpo_; }

    /** Render the graph for golden tests and diagnostics. */
    std::string toString() const;

  private:
    const isa::Function *fn_;
    std::vector<BasicBlock> blocks_;
    std::vector<int> blockOf_;
    std::vector<bool> reachable_;
    std::vector<int> rpo_;
};

} // namespace rest::analysis

#endif // REST_ANALYSIS_CFG_HH
