#include "analysis/coalesce_checks.hh"

#include <algorithm>
#include <optional>
#include <vector>

#include "analysis/cfg.hh"
#include "analysis/check_facts.hh"
#include "analysis/rewrite.hh"

namespace rest::analysis
{

using isa::Inst;
using isa::Opcode;
using isa::OpSource;

namespace
{

/** The group being grown: its location and current (union) window. */
struct Pending
{
    int at = -1;
    CheckFact original;
    CheckFact window;
};

} // namespace

std::size_t
coalesceChecks(isa::Function &fn, const CoalesceOptions &opts)
{
    if (fn.insts.empty())
        return 0;
    Cfg cfg(fn);

    std::vector<bool> marked(fn.insts.size(), false);
    struct Widen
    {
        int at;
        CheckFact window;
    };
    std::vector<Widen> widens;
    std::size_t merged = 0;

    for (int b : cfg.rpo()) {
        const auto &bb = cfg.blocks()[static_cast<std::size_t>(b)];
        std::optional<Pending> pending;
        auto flush = [&]() {
            if (pending && !(pending->window == pending->original))
                widens.push_back({pending->at, pending->window});
            pending.reset();
        };

        for (int i = bb.first; i <= bb.last; ++i) {
            auto group = matchCheckGroup(fn, i);
            if (group && group->end() <= bb.last) {
                const CheckFact &f = group->fact;
                if (pending && pending->window.base == f.base) {
                    std::int64_t lo =
                        std::min(pending->window.offset, f.offset);
                    std::int64_t hi = std::max(
                        pending->window.offset + pending->window.width,
                        f.offset + f.width);
                    bool touching =
                        f.offset <=
                            pending->window.offset +
                                pending->window.width &&
                        pending->window.offset <= f.offset + f.width;
                    if (touching && hi - lo <= 255) {
                        for (int k = 0; k < CheckGroup::length; ++k)
                            marked[static_cast<std::size_t>(
                                group->at + k)] = true;
                        pending->window.offset = lo;
                        pending->window.width =
                            static_cast<std::uint8_t>(hi - lo);
                        ++merged;
                        i = group->end();
                        continue;
                    }
                }
                flush();
                pending = Pending{group->at, f, f};
                i = group->end();
                continue;
            }

            const Inst &inst = fn.insts[static_cast<std::size_t>(i)];
            if (!pending)
                continue;
            bool base_redefined = inst.rd != isa::noReg &&
                inst.rd != isa::regZero &&
                inst.rd == pending->window.base;
            bool program_access = !opts.acrossAccesses &&
                (inst.op == Opcode::Load || inst.op == Opcode::Store) &&
                inst.tag == OpSource::Program;
            if (clobbersShadowState(inst) || base_redefined ||
                program_access)
                flush();
        }
        flush();
    }
    if (merged == 0)
        return 0;

    // Widen the surviving groups (leading AddI immediate = union
    // start, trailing AsanCheck width = union width), then drop the
    // merged-away groups through the shared rewrite helper.
    for (const Widen &w : widens) {
        fn.insts[static_cast<std::size_t>(w.at)].imm = w.window.offset;
        fn.insts[static_cast<std::size_t>(
                     w.at + CheckGroup::length - 1)]
            .width = w.window.width;
    }
    RewriteMap del = deleteInstructions(fn, marked);
    return del.removed / static_cast<std::size_t>(CheckGroup::length);
}

std::size_t
coalesceChecks(isa::Program &program, const CoalesceOptions &opts)
{
    std::size_t count = 0;
    for (auto &fn : program.funcs)
        count += coalesceChecks(fn, opts);
    return count;
}

} // namespace rest::analysis
