#include "analysis/hoist_checks.hh"

#include <algorithm>
#include <numeric>
#include <set>

#include "analysis/cfg.hh"
#include "analysis/dataflow.hh"
#include "analysis/dominators.hh"
#include "analysis/loops.hh"
#include "analysis/rewrite.hh"
#include "util/logging.hh"

namespace rest::analysis
{

using isa::Inst;

namespace
{

/**
 * True when the loop header can take a preheader spliced in front of
 * it: no in-loop predecessor may fall through into the header, or the
 * inserted code would execute on every iteration instead of once.
 */
bool
preheaderFeasible(const Cfg &cfg, const Loop &loop)
{
    const auto &blocks = cfg.blocks();
    const int hfirst = blocks[static_cast<std::size_t>(loop.header)].first;
    for (int p : blocks[static_cast<std::size_t>(loop.header)].preds) {
        if (!loop.contains(p))
            continue;
        const auto &pb = blocks[static_cast<std::size_t>(p)];
        if (pb.last + 1 == hfirst &&
            fallsThrough(cfg.function().insts[
                static_cast<std::size_t>(pb.last)].op))
            return false;
    }
    return true;
}

/**
 * Analyze 'fn', hoist the candidates of the first loop (outermost
 * first) that has any, and fold the edit into 'res'. Returns false
 * when no loop changed (fixpoint). One loop per round: every edit
 * invalidates the CFG, dominators and dataflow fixpoints.
 */
bool
hoistOneLoop(isa::Function &fn, HoistResult &res)
{
    Cfg cfg(fn);
    DomTree dom(cfg);
    LoopForest forest(cfg, dom);
    // Never transform irreducible control flow: a retreating edge
    // whose target does not dominate its source has no unique
    // preheader point, and guessing one could miscompile.
    if (forest.irreducible() || forest.loops().empty())
        return false;
    BackwardSolver<AnticipatedChecksDomain> antic(
        cfg, AnticipatedChecksDomain(fn));

    // Outermost loops first: a group anticipated at an outer header
    // leaves the whole nest in one move instead of rippling through
    // every level (and being counted once per level).
    std::vector<std::size_t> order(forest.loops().size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  const Loop &la = forest.loops()[a];
                  const Loop &lb = forest.loops()[b];
                  if (la.depth != lb.depth)
                      return la.depth < lb.depth;
                  return la.header < lb.header;
              });

    for (std::size_t li : order) {
        const Loop &loop = forest.loops()[li];
        if (!preheaderFeasible(cfg, loop))
            continue;

        // Loop-wide guards: any shadow-state clobber in the body
        // makes every verdict iteration-dependent (nothing hoists),
        // and a register defined in the body disqualifies facts based
        // on it.
        bool killed = false;
        std::set<isa::RegId> defined;
        for (int b : loop.blocks) {
            const auto &bb = cfg.blocks()[static_cast<std::size_t>(b)];
            for (int i = bb.first; i <= bb.last && !killed; ++i) {
                const Inst &inst =
                    fn.insts[static_cast<std::size_t>(i)];
                if (clobbersShadowState(inst)) {
                    killed = true;
                    break;
                }
                if (inst.rd != isa::noReg && inst.rd != isa::regZero)
                    defined.insert(inst.rd);
            }
            if (killed)
                break;
        }
        if (killed)
            continue;

        const auto &ant = antic.in(loop.header);
        if (!ant)
            continue; // degenerate: no path from header reaches exit

        // Candidate groups: wholly inside one body block, invariant
        // base, fact anticipated at the header.
        std::vector<CheckGroup> cands;
        for (int b : loop.blocks) {
            const auto &bb = cfg.blocks()[static_cast<std::size_t>(b)];
            for (int i = bb.first; i <= bb.last; ++i) {
                auto group = matchCheckGroup(fn, i);
                if (!group || group->end() > bb.last)
                    continue;
                i = group->end();
                if (defined.count(group->fact.base) != 0)
                    continue;
                if (!anyCovers(*ant, group->fact))
                    continue;
                cands.push_back(*group);
            }
        }
        if (cands.empty())
            continue;

        // One preheader group per fact, minus facts covered by a
        // wider kept fact (the preheader coalesces for free).
        std::set<CheckFact> facts;
        for (const CheckGroup &c : cands)
            facts.insert(c.fact);
        std::vector<CheckFact> kept;
        for (const CheckFact &f : facts) {
            bool covered = std::any_of(
                facts.begin(), facts.end(), [&](const CheckFact &g) {
                    return !(g == f) && covers(g, f);
                });
            if (!covered)
                kept.push_back(f);
        }
        auto keptCovering = [&](const CheckFact &f) {
            for (std::size_t k = 0; k < kept.size(); ++k) {
                if (covers(kept[k], f))
                    return static_cast<int>(k);
            }
            return -1;
        };

        // The preheader body is a verbatim copy of one in-loop group
        // per kept fact (this keeps the shadow-base bias constant out
        // of the analysis layer: the copied AddI already carries it).
        std::vector<Inst> pre;
        std::vector<int> keptOffset;
        for (const CheckFact &f : kept) {
            for (const CheckGroup &c : cands) {
                if (!(c.fact == f))
                    continue;
                keptOffset.push_back(static_cast<int>(pre.size()));
                for (int k = 0; k < CheckGroup::length; ++k)
                    pre.push_back(fn.insts[
                        static_cast<std::size_t>(c.at + k)]);
                break;
            }
        }

        const int old_n = static_cast<int>(fn.insts.size());
        const int hfirst =
            cfg.blocks()[static_cast<std::size_t>(loop.header)].first;
        std::vector<bool> in_loop_pre(fn.insts.size(), false);
        for (int b : loop.blocks) {
            const auto &bb = cfg.blocks()[static_cast<std::size_t>(b)];
            for (int i = bb.first; i <= bb.last; ++i)
                in_loop_pre[static_cast<std::size_t>(i)] = true;
        }
        std::vector<bool> marked(fn.insts.size(), false);
        for (const CheckGroup &c : cands) {
            for (int k = 0; k < CheckGroup::length; ++k)
                marked[static_cast<std::size_t>(c.at + k)] = true;
        }

        RewriteMap del = deleteInstructions(fn, marked);
        rest_assert(del.removed % CheckGroup::length == 0,
                    "partial check group deleted in ", fn.name);

        std::vector<bool> in_loop_post(fn.insts.size(), false);
        for (int i = 0; i < old_n; ++i) {
            if (!marked[static_cast<std::size_t>(i)])
                in_loop_post[static_cast<std::size_t>(
                    del.translate(i))] =
                    in_loop_pre[static_cast<std::size_t>(i)];
        }
        const int pos = del.translate(hfirst);

        // Splice the preheader: loop-entry edges fall into it, back
        // edges (branches from inside the loop) skip it.
        RewriteMap ins = insertInstructions(
            fn, pos, pre, [&](int j) {
                return in_loop_post[static_cast<std::size_t>(j)];
            });
        auto translate = [&](int idx) {
            return ins.translate(del.translate(idx));
        };

        std::vector<HoistRecord> recs(kept.size());
        for (std::size_t k = 0; k < kept.size(); ++k) {
            recs[k].fact = kept[k];
            recs[k].preheaderAt = pos + keptOffset[k];
        }
        for (const CheckGroup &c : cands) {
            if (!marked[static_cast<std::size_t>(c.at)])
                continue; // rescued by the rewrite helper, not hoisted
            int k = keptCovering(c.fact);
            rest_assert(k >= 0, "hoisted fact lost its preheader group "
                        "in ", fn.name);
            recs[static_cast<std::size_t>(k)].guardedSites.push_back(
                translate(c.at));
        }

        // Re-base earlier records; a preheader group re-hoisted out
        // of an enclosing loop folds its sites into the new record.
        std::vector<HoistRecord> updated;
        for (HoistRecord &old : res.records) {
            if (old.preheaderAt < old_n &&
                marked[static_cast<std::size_t>(old.preheaderAt)]) {
                int k = keptCovering(old.fact);
                rest_assert(k >= 0, "re-hoisted fact lost its "
                            "preheader group in ", fn.name);
                for (int s : old.guardedSites)
                    recs[static_cast<std::size_t>(k)]
                        .guardedSites.push_back(translate(s));
                continue;
            }
            old.preheaderAt = translate(old.preheaderAt);
            for (int &s : old.guardedSites)
                s = translate(s);
            updated.push_back(std::move(old));
        }
        for (HoistRecord &r : recs)
            updated.push_back(std::move(r));
        res.records = std::move(updated);
        res.hoisted += del.removed / CheckGroup::length;
        return true;
    }
    return false;
}

} // namespace

HoistResult
hoistLoopChecks(isa::Function &fn)
{
    HoistResult res;
    if (fn.insts.empty())
        return res;
    while (hoistOneLoop(fn, res)) {
    }
    return res;
}

std::size_t
hoistLoopChecks(isa::Program &program)
{
    std::size_t count = 0;
    for (auto &fn : program.funcs)
        count += hoistLoopChecks(fn).hoisted;
    return count;
}

} // namespace rest::analysis
