/**
 * @file
 * Redundant ASan shadow-check elision.
 *
 * A check group is redundant when, at its program point, an earlier
 * check of the same base register with a covering offset window is
 * available on every path from function entry (the must-dataflow of
 * analysis/check_facts.hh) — i.e. the earlier check either already
 * faulted or proved the whole window addressable, the base register
 * was not redefined in between, and nothing that can rewrite shadow
 * state (call, runtime pseudo-op, arm/disarm, instrumentation store)
 * intervened. Deleting such a group preserves both benign behaviour
 * and detection: the retained dominating check faults on exactly the
 * same shadow state the elided one would have seen (DESIGN.md spells
 * out the argument).
 *
 * The pass deletes whole 5-op groups and remaps branch targets; a
 * branch that pointed at a deleted group's leader is retargeted to the
 * first surviving instruction after it (the access the group guarded),
 * which is precisely where instrumentation-era targets semantically
 * point. Elision decisions use the fixpoint computed over the
 * *unmodified* function: an elided group's fact is implied by its
 * covering fact (coverage is transitive) and its only register writes
 * hit the instrumentation scratch registers, so removal never
 * invalidates another group's decision.
 */

#ifndef REST_ANALYSIS_ELIDE_CHECKS_HH
#define REST_ANALYSIS_ELIDE_CHECKS_HH

#include <cstddef>

#include "isa/program.hh"

namespace rest::analysis
{

/**
 * Delete provably-redundant shadow-check groups from 'fn' in place.
 * @return the number of groups (checks) elided.
 */
std::size_t elideRedundantChecks(isa::Function &fn);

/** Apply elideRedundantChecks() to every function of 'program'. */
std::size_t elideRedundantChecks(isa::Program &program);

} // namespace rest::analysis

#endif // REST_ANALYSIS_ELIDE_CHECKS_HH
