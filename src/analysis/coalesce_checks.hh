/**
 * @file
 * Shadow-check coalescing: merge same-base, adjacent or overlapping
 * check windows within a basic block into one widened check.
 *
 * Two groups in one block with no intervening shadow clobber or base
 * redefinition check the same memory state of the same register's
 * address space; if their windows touch, one check of the union
 * window [min(offset), max(offset+width)) reports exactly what the
 * pair would. The emulated AsanCheck validates the *entire* window
 * through shadow memory (the loaded shadow byte only models the
 * access's timing), so widening is semantically exact for any union
 * width that fits the instruction's 8-bit width field.
 *
 * Both groups execute unconditionally in the original block
 * (straight-line code), so checking the second window early at the
 * first group's site can neither invent a detection (the second
 * check was going to run on the unchanged shadow state) nor mask one
 * (the widened fact covers both windows for the rest of the block).
 * The argument is spelled out in DESIGN.md §13.
 */

#ifndef REST_ANALYSIS_COALESCE_CHECKS_HH
#define REST_ANALYSIS_COALESCE_CHECKS_HH

#include <cstddef>

#include "isa/program.hh"

namespace rest::analysis
{

struct CoalesceOptions
{
    /**
     * Merge across intervening program loads/stores. Exact when the
     * scheme can never arm REST tokens (a plain access then cannot
     * fault, so reordering a check before it is unobservable); under
     * a token-arming scheme an intervening access could raise a REST
     * fault that the widened earlier check would preempt with an
     * ASan report, so the caller must turn this off to keep fault
     * *kinds* byte-identical (runtime/instrumentation.cc does).
     */
    bool acrossAccesses = true;
};

/**
 * Coalesce mergeable check groups of 'fn' in place; returns the
 * number of groups folded away into a widened neighbour.
 */
std::size_t coalesceChecks(isa::Function &fn,
                           const CoalesceOptions &opts = {});

/** Program-wide coalescing; returns the total groups folded away. */
std::size_t coalesceChecks(isa::Program &program,
                           const CoalesceOptions &opts = {});

} // namespace rest::analysis

#endif // REST_ANALYSIS_COALESCE_CHECKS_HH
