#include "analysis/dominators.hh"

#include <sstream>

namespace rest::analysis
{

DomTree::DomTree(const Cfg &cfg) : cfg_(&cfg)
{
    const auto &blocks = cfg.blocks();
    const auto &rpo = cfg.rpo();
    idom_.assign(blocks.size(), -1);
    rpoIndex_.assign(blocks.size(), -1);
    for (std::size_t i = 0; i < rpo.size(); ++i)
        rpoIndex_[rpo[i]] = static_cast<int>(i);

    const int entry = rpo.empty() ? 0 : rpo.front();
    idom_[entry] = entry;

    // Walk the idom chains of two finger blocks up to their meet.
    auto intersect = [this](int a, int b) {
        while (a != b) {
            while (rpoIndex_[a] > rpoIndex_[b])
                a = idom_[a];
            while (rpoIndex_[b] > rpoIndex_[a])
                b = idom_[b];
        }
        return a;
    };

    bool changed = true;
    while (changed) {
        changed = false;
        for (int b : rpo) {
            if (b == entry)
                continue;
            int new_idom = -1;
            for (int p : blocks[b].preds) {
                if (idom_[p] < 0)
                    continue; // unreachable or not yet processed
                new_idom = new_idom < 0 ? p : intersect(p, new_idom);
            }
            if (new_idom >= 0 && idom_[b] != new_idom) {
                idom_[b] = new_idom;
                changed = true;
            }
        }
    }
}

bool
DomTree::dominates(int a, int b) const
{
    if (a == b)
        return true;
    if (idom_[a] < 0 || idom_[b] < 0)
        return false; // unreachable blocks
    const int entry = cfg_->rpo().front();
    while (b != entry) {
        b = idom_[b];
        if (b == a)
            return true;
    }
    return a == entry;
}

std::string
DomTree::toString() const
{
    std::ostringstream os;
    os << "domtree " << cfg_->function().name << ":\n";
    for (std::size_t b = 0; b < idom_.size(); ++b) {
        os << "  idom(b" << b << ") = ";
        if (idom_[b] < 0)
            os << "-  ; unreachable";
        else if (static_cast<int>(b) == idom_[b])
            os << "b" << idom_[b] << "  ; entry";
        else
            os << "b" << idom_[b];
        os << "\n";
    }
    return os.str();
}

} // namespace rest::analysis
