/**
 * @file
 * A small forward-dataflow framework over a Cfg.
 *
 * A Domain supplies the lattice and the per-instruction transfer
 * function:
 *
 *   struct Domain
 *   {
 *       using State = ...;            // copyable, operator==
 *       State boundary() const;       // state at function entry
 *       State top() const;            // meet identity (optimistic)
 *       void meet(State &into, const State &from) const;
 *       void transfer(State &st, const isa::Inst &inst, int idx) const;
 *   };
 *
 * ForwardSolver iterates blocks in reverse postorder until the block
 * IN/OUT states reach a fixpoint, then lets clients re-walk any block
 * with scan() to observe the state immediately before each
 * instruction. Unreachable blocks keep the top() state and are never
 * scanned.
 *
 * For a may-analysis (union meet) top() is the empty set; for a
 * must-analysis (intersection meet) represent top() as an explicit
 * "universe" value, e.g. std::optional<std::set<T>> with nullopt as
 * top (see CheckFactsDomain in analysis/check_facts.hh).
 *
 * BackwardSolver is the dual: boundary() is the state at function
 * *exit*, the meet runs over successors, and a block's transfer walks
 * its instructions last-to-first (the Domain's transfer maps the
 * state *after* an instruction to the state *before* it). in(b) is
 * the fixpoint before the block's first instruction — for the
 * anticipated-checks domain, "which checks run on every path from
 * here" (see AnticipatedChecksDomain in analysis/check_facts.hh).
 */

#ifndef REST_ANALYSIS_DATAFLOW_HH
#define REST_ANALYSIS_DATAFLOW_HH

#include <utility>
#include <vector>

#include "analysis/cfg.hh"

namespace rest::analysis
{

template <typename Domain>
class ForwardSolver
{
  public:
    using State = typename Domain::State;

    ForwardSolver(const Cfg &cfg, Domain domain)
        : cfg_(&cfg), domain_(std::move(domain))
    {
        solve();
    }

    const Domain &domain() const { return domain_; }

    /** Fixpoint state at the entry of 'block'. */
    const State &in(int block) const { return in_.at(block); }

    /** Fixpoint state at the exit of 'block'. */
    const State &out(int block) const { return out_.at(block); }

    /**
     * Re-walk one block, calling visit(state, inst, idx) with the
     * dataflow state immediately *before* each instruction (i.e.
     * before the instruction's own transfer is applied).
     */
    template <typename Visit>
    void
    scan(int block, Visit &&visit) const
    {
        const auto &bb = cfg_->blocks().at(block);
        const auto &insts = cfg_->function().insts;
        State st = in_[block];
        for (int i = bb.first; i <= bb.last; ++i) {
            visit(static_cast<const State &>(st), insts[i], i);
            domain_.transfer(st, insts[i], i);
        }
    }

  private:
    void
    solve()
    {
        const auto &blocks = cfg_->blocks();
        const auto &rpo = cfg_->rpo();
        const auto &insts = cfg_->function().insts;
        in_.assign(blocks.size(), domain_.top());
        out_.assign(blocks.size(), domain_.top());
        if (rpo.empty())
            return;
        const int entry = rpo.front();

        bool changed = true;
        while (changed) {
            changed = false;
            for (int b : rpo) {
                State in_state =
                    b == entry ? domain_.boundary() : domain_.top();
                for (int p : blocks[b].preds) {
                    if (cfg_->reachable()[p])
                        domain_.meet(in_state, out_[p]);
                }
                State out_state = in_state;
                for (int i = blocks[b].first; i <= blocks[b].last; ++i)
                    domain_.transfer(out_state, insts[i], i);
                if (!(in_state == in_[b]) || !(out_state == out_[b])) {
                    in_[b] = std::move(in_state);
                    out_[b] = std::move(out_state);
                    changed = true;
                }
            }
        }
    }

    const Cfg *cfg_;
    Domain domain_;
    std::vector<State> in_;
    std::vector<State> out_;
};

/**
 * Backward worklist solver; the dual of ForwardSolver (see the file
 * comment). Exit blocks — reachable blocks with no successors — take
 * the boundary() state at their out edge.
 */
template <typename Domain>
class BackwardSolver
{
  public:
    using State = typename Domain::State;

    BackwardSolver(const Cfg &cfg, Domain domain)
        : cfg_(&cfg), domain_(std::move(domain))
    {
        solve();
    }

    const Domain &domain() const { return domain_; }

    /** Fixpoint state *before* the first instruction of 'block'. */
    const State &in(int block) const { return in_.at(block); }

    /** Fixpoint state *after* the last instruction of 'block'. */
    const State &out(int block) const { return out_.at(block); }

    /**
     * Re-walk one block last-to-first, calling visit(state, inst,
     * idx) with the dataflow state immediately *after* each
     * instruction (i.e. before the instruction's own backward
     * transfer is applied).
     */
    template <typename Visit>
    void
    scan(int block, Visit &&visit) const
    {
        const auto &bb = cfg_->blocks().at(block);
        const auto &insts = cfg_->function().insts;
        State st = out_[block];
        for (int i = bb.last; i >= bb.first; --i) {
            visit(static_cast<const State &>(st), insts[i], i);
            domain_.transfer(st, insts[i], i);
        }
    }

  private:
    void
    solve()
    {
        const auto &blocks = cfg_->blocks();
        const auto &rpo = cfg_->rpo();
        const auto &insts = cfg_->function().insts;
        in_.assign(blocks.size(), domain_.top());
        out_.assign(blocks.size(), domain_.top());
        if (rpo.empty())
            return;

        bool changed = true;
        while (changed) {
            changed = false;
            for (auto it = rpo.rbegin(); it != rpo.rend(); ++it) {
                const int b = *it;
                bool exit_block = true;
                State out_state = domain_.top();
                for (int s : blocks[b].succs) {
                    if (!cfg_->reachable()[s])
                        continue;
                    exit_block = false;
                    domain_.meet(out_state, in_[s]);
                }
                if (exit_block)
                    out_state = domain_.boundary();
                State in_state = out_state;
                for (int i = blocks[b].last; i >= blocks[b].first; --i)
                    domain_.transfer(in_state, insts[i], i);
                if (!(in_state == in_[b]) ||
                    !(out_state == out_[b])) {
                    in_[b] = std::move(in_state);
                    out_[b] = std::move(out_state);
                    changed = true;
                }
            }
        }
    }

    const Cfg *cfg_;
    Domain domain_;
    std::vector<State> in_;
    std::vector<State> out_;
};

} // namespace rest::analysis

#endif // REST_ANALYSIS_DATAFLOW_HH
