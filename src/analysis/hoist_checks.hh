/**
 * @file
 * Loop-invariant shadow-check hoisting.
 *
 * The elision pass removes a check dominated by an equivalent check;
 * it cannot touch the hot case — a check with a loop-invariant base
 * executed on every iteration. hoistLoopChecks() moves such groups
 * into a synthesized preheader so they execute once per loop *entry*
 * instead of once per iteration.
 *
 * A group in loop L hoists when all of:
 *
 *  1. its base register has no definition anywhere in L (the checked
 *     address is the same on every iteration),
 *  2. no instruction in L clobbers shadow state — the kill set shared
 *     with CheckFactsDomain (calls, runtime pseudo-ops, arm/disarm,
 *     instrumentation stores) — so the window's validity cannot
 *     change while the loop runs, and
 *  3. its fact is *anticipated* at the loop header (backward must-
 *     dataflow, AnticipatedChecksDomain): on every path from the
 *     header a check proving the fact executes before anything could
 *     invalidate it.
 *
 * (1)+(2) make the per-iteration verdict loop-invariant, so one
 * preheader check reports exactly what every deleted per-iteration
 * check would have (no detection is masked); (3) guarantees the
 * original program was going to execute such a check on every path
 * anyway (no detection is invented on an early-exit path). The full
 * argument is DESIGN.md §13.
 *
 * Functions with irreducible control flow, and loops whose header is
 * entered by fall-through from inside the loop (no clean preheader
 * splice point), are conservatively skipped.
 *
 * Every hoist is recorded so the verifier can re-prove, on the
 * transformed function, that the preheader group dominates each site
 * it replaced and that the hoisted window is still available there on
 * all paths (analysis/verifier.hh, verifyHoistedChecks()).
 */

#ifndef REST_ANALYSIS_HOIST_CHECKS_HH
#define REST_ANALYSIS_HOIST_CHECKS_HH

#include <cstddef>
#include <vector>

#include "analysis/check_facts.hh"
#include "isa/program.hh"

namespace rest::analysis
{

/** Audit record of one hoisted check group (post-transform indices). */
struct HoistRecord
{
    /** The window the preheader group proves. */
    CheckFact fact;
    /** Index of the hoisted group's leading instruction. */
    int preheaderAt = -1;
    /**
     * For each deleted in-loop group: the index of the first
     * surviving instruction after it (the access it guarded).
     */
    std::vector<int> guardedSites;
};

/** What hoistLoopChecks() did to one function. */
struct HoistResult
{
    /** Check groups removed from loop bodies. */
    std::size_t hoisted = 0;
    /** One record per live preheader group. */
    std::vector<HoistRecord> records;
};

/** Hoist loop-invariant check groups of 'fn' into preheaders. */
HoistResult hoistLoopChecks(isa::Function &fn);

/** Program-wide hoisting; returns the total group count hoisted. */
std::size_t hoistLoopChecks(isa::Program &program);

} // namespace rest::analysis

#endif // REST_ANALYSIS_HOIST_CHECKS_HH
