#include "analysis/rewrite.hh"

#include "analysis/cfg.hh"
#include "util/logging.hh"

namespace rest::analysis
{

using isa::Inst;

RewriteMap
deleteInstructions(isa::Function &fn, std::vector<bool> &marked)
{
    const int n = static_cast<int>(fn.insts.size());
    rest_assert(marked.size() == fn.insts.size(),
                "deletion mask size mismatch in ", fn.name);

    // Rescue branch targets that would be left with no survivor at or
    // after them: keep the contiguous marked run containing the
    // target (a whole trailing check group, when marks are
    // group-granular). Unmarking only creates survivors, so one pass
    // suffices.
    for (const Inst &inst : fn.insts) {
        if (!hasBranchTarget(inst.op) || inst.target < 0)
            continue;
        bool survivor = false;
        for (int i = inst.target; i < n; ++i) {
            if (!marked[static_cast<std::size_t>(i)]) {
                survivor = true;
                break;
            }
        }
        if (!survivor) {
            for (int i = inst.target;
                 i < n && marked[static_cast<std::size_t>(i)]; ++i)
                marked[static_cast<std::size_t>(i)] = false;
        }
    }

    // Assign post-edit slots to survivors.
    std::vector<int> direct(fn.insts.size(), -1);
    std::vector<Inst> out;
    out.reserve(fn.insts.size());
    for (int i = 0; i < n; ++i) {
        if (!marked[static_cast<std::size_t>(i)]) {
            direct[static_cast<std::size_t>(i)] =
                static_cast<int>(out.size());
            out.push_back(fn.insts[static_cast<std::size_t>(i)]);
        }
    }
    rest_assert(!out.empty(), "deleting every instruction of ", fn.name);

    RewriteMap map;
    map.removed = fn.insts.size() - out.size();
    map.oldToNew.resize(fn.insts.size());
    int next = static_cast<int>(out.size()) - 1;
    for (int i = n - 1; i >= 0; --i) {
        if (direct[static_cast<std::size_t>(i)] >= 0)
            next = direct[static_cast<std::size_t>(i)];
        map.oldToNew[static_cast<std::size_t>(i)] = next;
    }

    for (Inst &inst : out) {
        if (hasBranchTarget(inst.op) && inst.target >= 0)
            inst.target = map.oldToNew[
                static_cast<std::size_t>(inst.target)];
    }
    fn.insts = std::move(out);
    return map;
}

RewriteMap
insertInstructions(isa::Function &fn, int pos,
                   const std::vector<isa::Inst> &insts,
                   const std::function<bool(int)> &skipInserted)
{
    const int n = static_cast<int>(fn.insts.size());
    rest_assert(pos >= 0 && pos <= n, "splice position ", pos,
                " out of range in ", fn.name);
    const int len = static_cast<int>(insts.size());

    // Retarget the original instructions while indices are still
    // pre-edit: targets beyond the splice always shift; targets at
    // the splice point shift only when the branch site asks to skip
    // the inserted code (back edges re-entering a loop header).
    for (int i = 0; i < n; ++i) {
        Inst &inst = fn.insts[static_cast<std::size_t>(i)];
        if (!hasBranchTarget(inst.op) || inst.target < 0)
            continue;
        if (inst.target > pos ||
            (inst.target == pos && skipInserted(i)))
            inst.target += len;
    }
    fn.insts.insert(fn.insts.begin() + pos, insts.begin(), insts.end());

    RewriteMap map;
    map.oldToNew.resize(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
        map.oldToNew[static_cast<std::size_t>(i)] =
            i < pos ? i : i + len;
    return map;
}

} // namespace rest::analysis
