#include "analysis/check_facts.hh"

#include <algorithm>

namespace rest::analysis
{

using isa::Inst;
using isa::Opcode;
using isa::OpSource;

std::optional<CheckGroup>
matchCheckGroup(const isa::Function &fn, int i)
{
    const auto &insts = fn.insts;
    if (i < 0 || i + CheckGroup::length > static_cast<int>(insts.size()))
        return std::nullopt;
    for (int k = 0; k < CheckGroup::length; ++k) {
        if (insts[i + k].tag != OpSource::AccessCheck)
            return std::nullopt;
    }
    const Inst &ea = insts[i];         // addi rB, base, imm
    const Inst &shr = insts[i + 1];    // shri rA, rB, 3
    const Inst &bias = insts[i + 2];   // addi rA, rA, shadowBase
    const Inst &ld = insts[i + 3];     // ld1 rA, [rA+0]
    const Inst &chk = insts[i + 4];    // asanchk rA, rB
    if (ea.op != Opcode::AddI || ea.rd != rCheckScratchB)
        return std::nullopt;
    if (shr.op != Opcode::ShrI || shr.rd != rCheckScratchA ||
        shr.rs1 != rCheckScratchB || shr.imm != 3)
        return std::nullopt;
    if (bias.op != Opcode::AddI || bias.rd != rCheckScratchA ||
        bias.rs1 != rCheckScratchA)
        return std::nullopt;
    if (ld.op != Opcode::Load || ld.rd != rCheckScratchA ||
        ld.rs1 != rCheckScratchA || ld.width != 1 || ld.imm != 0)
        return std::nullopt;
    if (chk.op != Opcode::AsanCheck || chk.rs1 != rCheckScratchA ||
        chk.rs2 != rCheckScratchB)
        return std::nullopt;

    CheckGroup group;
    group.at = i;
    group.fact = {ea.rs1, ea.imm, chk.width};
    return group;
}

std::vector<CheckGroup>
findCheckGroups(const isa::Function &fn)
{
    std::vector<CheckGroup> groups;
    const int n = static_cast<int>(fn.insts.size());
    for (int i = 0; i < n; ++i) {
        if (auto group = matchCheckGroup(fn, i)) {
            groups.push_back(*group);
            i += CheckGroup::length - 1;
        }
    }
    return groups;
}

bool
covers(const CheckFact &have, const CheckFact &want)
{
    return have.base == want.base && have.offset <= want.offset &&
        want.offset + want.width <= have.offset + have.width;
}

bool
anyCovers(const std::set<CheckFact> &facts, const CheckFact &want)
{
    return std::any_of(facts.begin(), facts.end(),
                       [&want](const CheckFact &have) {
                           return covers(have, want);
                       });
}

CheckFactsDomain::CheckFactsDomain(const isa::Function &fn)
{
    gen_.assign(fn.insts.size(), std::nullopt);
    for (const CheckGroup &group : findCheckGroups(fn))
        gen_[group.end()] = group.fact;
}

std::optional<CheckFact>
CheckFactsDomain::genAt(int idx) const
{
    return gen_.at(idx);
}

void
CheckFactsDomain::meet(State &into, const State &from) const
{
    if (!from)
        return; // TOP contributes nothing to an intersection
    if (!into) {
        into = from;
        return;
    }
    std::set<CheckFact> kept;
    std::set_intersection(into->begin(), into->end(), from->begin(),
                          from->end(),
                          std::inserter(kept, kept.begin()));
    *into = std::move(kept);
}

bool
clobbersShadowState(const Inst &inst)
{
    // Events that can repoison shadow state invalidate every fact:
    // callees poison their own frames, the runtime pseudo-ops expand
    // into allocator/interceptor work, arm/disarm rewrite token
    // metadata, and instrumentation-inserted stores are exactly the
    // stack (un)poisoning sequences.
    return inst.op == Opcode::Call || inst.op == Opcode::Arm ||
        inst.op == Opcode::Disarm || isa::isRuntimeOp(inst.op) ||
        (inst.op == Opcode::Store && inst.tag != OpSource::Program);
}

void
CheckFactsDomain::transfer(State &st, const Inst &inst, int idx) const
{
    if (!st)
        return; // unreachable prefix: stay TOP

    if (clobbersShadowState(inst)) {
        st->clear();
        return;
    }

    // A redefinition of a base register retires its facts.
    if (inst.rd != isa::noReg && inst.rd != isa::regZero) {
        for (auto it = st->begin(); it != st->end();) {
            it = it->base == inst.rd ? st->erase(it) : std::next(it);
        }
    }

    if (auto fact = gen_[idx])
        st->insert(*fact);
}

AnticipatedChecksDomain::AnticipatedChecksDomain(const isa::Function &fn)
{
    gen_.assign(fn.insts.size(), std::nullopt);
    for (const CheckGroup &group : findCheckGroups(fn))
        gen_[group.at] = group.fact;
}

void
AnticipatedChecksDomain::meet(State &into, const State &from) const
{
    if (!from)
        return; // TOP contributes nothing to an intersection
    if (!into) {
        into = from;
        return;
    }
    std::set<CheckFact> kept;
    std::set_intersection(into->begin(), into->end(), from->begin(),
                          from->end(),
                          std::inserter(kept, kept.begin()));
    *into = std::move(kept);
}

void
AnticipatedChecksDomain::transfer(State &st, const Inst &inst,
                                  int idx) const
{
    if (!st)
        return; // stays TOP until an exit path is seen

    // Backward through a shadow clobber: a check executing after the
    // clobber observes different shadow state than a check at the
    // earlier point would, so nothing later counts as anticipated.
    if (clobbersShadowState(inst)) {
        st->clear();
        return;
    }

    // Backward through a register definition: facts naming inst.rd as
    // base refer to the *new* value; they are not anticipated for the
    // value the register holds before this instruction.
    if (inst.rd != isa::noReg && inst.rd != isa::regZero) {
        for (auto it = st->begin(); it != st->end();) {
            it = it->base == inst.rd ? st->erase(it) : std::next(it);
        }
    }

    if (auto fact = gen_[idx])
        st->insert(*fact);
}

} // namespace rest::analysis
