/**
 * @file
 * Dominator tree over a Cfg (Cooper/Harvey/Kennedy's iterative
 * algorithm on the reverse-postorder of the reachable subgraph).
 *
 * Block A dominates block B when every path from the entry block to B
 * passes through A. The verifier phrases "every access is preceded by
 * its check on all paths" as a dataflow availability question, but the
 * tree itself is exposed for golden tests and for clients that want
 * plain dominance queries.
 */

#ifndef REST_ANALYSIS_DOMINATORS_HH
#define REST_ANALYSIS_DOMINATORS_HH

#include <string>
#include <vector>

#include "analysis/cfg.hh"

namespace rest::analysis
{

/** Immediate-dominator tree of a Cfg's reachable blocks. */
class DomTree
{
  public:
    explicit DomTree(const Cfg &cfg);

    /**
     * Immediate dominator of 'block'; the entry block is its own
     * idom, and unreachable blocks report -1.
     */
    int idom(int block) const { return idom_.at(block); }

    /**
     * True when 'a' dominates 'b' (reflexive: a block dominates
     * itself). Unreachable blocks dominate nothing and are dominated
     * by nothing but themselves.
     */
    bool dominates(int a, int b) const;

    /** Render idom edges for golden tests. */
    std::string toString() const;

  private:
    const Cfg *cfg_;
    std::vector<int> idom_;
    std::vector<int> rpoIndex_;
};

} // namespace rest::analysis

#endif // REST_ANALYSIS_DOMINATORS_HH
