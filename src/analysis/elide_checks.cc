#include "analysis/elide_checks.hh"

#include <vector>

#include "analysis/cfg.hh"
#include "analysis/check_facts.hh"
#include "analysis/dataflow.hh"
#include "analysis/rewrite.hh"

namespace rest::analysis
{

using isa::Inst;

std::size_t
elideRedundantChecks(isa::Function &fn)
{
    if (fn.insts.empty())
        return 0;
    Cfg cfg(fn);
    ForwardSolver<CheckFactsDomain> solver(cfg, CheckFactsDomain(fn));

    // 1. Mark redundant groups, judging each against the fixpoint
    //    state at its leader (reachable blocks only: unreachable
    //    checks never execute, so deleting them would only churn
    //    static layout).
    std::vector<bool> deleted(fn.insts.size(), false);
    std::size_t count = 0;
    for (int b : cfg.rpo()) {
        solver.scan(b, [&](const CheckFactsDomain::State &st,
                           const Inst &inst, int idx) {
            (void)inst;
            auto group = matchCheckGroup(fn, idx);
            if (!group)
                return;
            // A group is straight-line code, but a hand-written
            // program could branch into its middle; only elide groups
            // wholly inside one block.
            if (cfg.blockOf(group->at) != cfg.blockOf(group->end()))
                return;
            if (st && anyCovers(*st, group->fact)) {
                for (int k = 0; k < CheckGroup::length; ++k)
                    deleted[static_cast<std::size_t>(idx + k)] = true;
                ++count;
            }
        });
    }
    if (count == 0)
        return 0;

    // 2. Rebuild the instruction vector and remap branch targets; a
    //    target at a deleted group resolves to the first survivor
    //    after it (the guarded access), and a trailing group with no
    //    survivor after a branch target is rescued (kept) by the
    //    shared rewrite helper rather than corrupting the branch.
    RewriteMap map = deleteInstructions(fn, deleted);
    return map.removed / static_cast<std::size_t>(CheckGroup::length);
}

std::size_t
elideRedundantChecks(isa::Program &program)
{
    std::size_t count = 0;
    for (auto &fn : program.funcs)
        count += elideRedundantChecks(fn);
    return count;
}

} // namespace rest::analysis
