#include "analysis/elide_checks.hh"

#include <vector>

#include "analysis/cfg.hh"
#include "analysis/check_facts.hh"
#include "analysis/dataflow.hh"
#include "util/logging.hh"

namespace rest::analysis
{

using isa::Inst;

std::size_t
elideRedundantChecks(isa::Function &fn)
{
    if (fn.insts.empty())
        return 0;
    Cfg cfg(fn);
    ForwardSolver<CheckFactsDomain> solver(cfg, CheckFactsDomain(fn));

    // 1. Mark redundant groups, judging each against the fixpoint
    //    state at its leader (reachable blocks only: unreachable
    //    checks never execute, so deleting them would only churn
    //    static layout).
    std::vector<bool> deleted(fn.insts.size(), false);
    std::size_t count = 0;
    for (int b : cfg.rpo()) {
        solver.scan(b, [&](const CheckFactsDomain::State &st,
                           const Inst &inst, int idx) {
            (void)inst;
            auto group = matchCheckGroup(fn, idx);
            if (!group)
                return;
            // A group is straight-line code, but a hand-written
            // program could branch into its middle; only elide groups
            // wholly inside one block.
            if (cfg.blockOf(group->at) != cfg.blockOf(group->end()))
                return;
            if (st && anyCovers(*st, group->fact)) {
                for (int k = 0; k < CheckGroup::length; ++k)
                    deleted[static_cast<std::size_t>(idx + k)] = true;
                ++count;
            }
        });
    }
    if (count == 0)
        return 0;

    // 2. Rebuild the instruction vector and remap branch targets; a
    //    target at a deleted group resolves to the first survivor
    //    after it (the guarded access).
    const int n = static_cast<int>(fn.insts.size());
    std::vector<int> map(fn.insts.size(), -1);
    std::vector<Inst> out;
    out.reserve(fn.insts.size() - count * CheckGroup::length);
    for (int i = 0; i < n; ++i) {
        if (!deleted[static_cast<std::size_t>(i)]) {
            map[static_cast<std::size_t>(i)] =
                static_cast<int>(out.size());
            out.push_back(fn.insts[static_cast<std::size_t>(i)]);
        }
    }
    for (Inst &inst : out) {
        if (!hasBranchTarget(inst.op) || inst.target < 0)
            continue;
        int t = inst.target;
        while (t < n && map[static_cast<std::size_t>(t)] < 0)
            ++t;
        rest_assert(t < n, "branch target past function end after "
                    "elision in ", fn.name);
        inst.target = map[static_cast<std::size_t>(t)];
    }
    fn.insts = std::move(out);
    return count;
}

std::size_t
elideRedundantChecks(isa::Program &program)
{
    std::size_t count = 0;
    for (auto &fn : program.funcs)
        count += elideRedundantChecks(fn);
    return count;
}

} // namespace rest::analysis
