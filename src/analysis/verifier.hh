/**
 * @file
 * Static verifier of the instrumentation invariants.
 *
 * Two entry points:
 *
 *  - verifyGeneratorContract(): the structural contract every
 *    generator-produced (pre-instrumentation) program must satisfy
 *    before runtime::applyScheme() may splice code into it — a single
 *    trailing Ret/Halt exit, no other exits, branch targets in range
 *    and never at the exit, call targets in range, stack-buffer
 *    references in range, and a reachable exit. applyScheme() rejects
 *    programs failing these with a clear fatal error instead of
 *    corrupting them silently.
 *
 *  - verify(): the full post-instrumentation invariant check. On top
 *    of the structural contract it proves, per function, that
 *      * every program-tagged load/store is covered by an ASan
 *        shadow-check of the same base register and a containing
 *        offset window on *all* paths from entry (available-checks
 *        dataflow, so redundant-check elision cannot break coverage),
 *      * every REST arm is disarmed on every path to the exit, no
 *        granule is armed twice or disarmed while unarmed,
 *      * the frame layout is sane: buffers lie inside the frame, do
 *        not overlap each other, and no redzone (armed granule or
 *        ASan poison region) overlaps a buffer.
 *
 * Both return structured diagnostics; an empty vector means the
 * program passed.
 */

#ifndef REST_ANALYSIS_VERIFIER_HH
#define REST_ANALYSIS_VERIFIER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/hoist_checks.hh"
#include "isa/program.hh"

namespace rest::analysis
{

/** What a diagnostic is about (one kind per checked invariant). */
enum class DiagKind : std::uint8_t
{
    // Structural (generator contract).
    EmptyFunction,           ///< function has no instructions
    MissingExit,             ///< last instruction is not Ret/Halt
    MultipleExits,           ///< Ret/Halt before the last instruction
    BranchTargetOutOfRange,  ///< branch/jmp target outside the function
    BranchIntoExit,          ///< branch/jmp targets the trailing exit
    CallTargetOutOfRange,    ///< callee index outside the program
    BadBufId,                ///< symbolic buffer id out of range
    UnreachableExit,         ///< the trailing exit cannot be reached
    // Post-instrumentation only.
    UnresolvedBufId,         ///< symbolic buffer survived layout
    UncheckedAccess,         ///< access not covered by a shadow check
    DoubleArm,               ///< granule armed while already armed
    DisarmWithoutArm,        ///< disarm of a not-armed granule
    ArmedAtExit,             ///< armed granule live at function exit
    UnknownArmAddress,       ///< arm/disarm address not fp+constant
    BufferOutsideFrame,      ///< buffer exceeds the frame bounds
    BufferOverlap,           ///< two buffers overlap
    RedzoneOverlapsBuffer,   ///< redzone overlaps a live buffer
    // Post-optimization soundness (hoisted checks).
    HoistedGroupMalformed,   ///< hoist record points at no such group
    HoistNotDominating,      ///< preheader does not dominate a site
    HoistedFactUnavailable,  ///< hoisted window not available at site
};

/** Stable name of a DiagKind (diagnostics and tests). */
const char *diagKindName(DiagKind kind);

/** One verifier finding, locatable and renderable. */
struct Diagnostic
{
    DiagKind kind;
    std::size_t func = 0;  ///< function index within the program
    int inst = -1;         ///< instruction index, -1 if not localised
    std::string message;   ///< human-readable, self-contained text

    std::string toString() const;
};

/** What verify() should expect of the instrumented program. */
struct VerifyOptions
{
    /** Scheme inserted ASan access checks: prove access coverage. */
    bool expectAsanChecks = false;
    /** Scheme inserted REST arms: prove arm/disarm pairing. */
    bool expectArming = false;
    /** Check buffer/redzone frame-layout disjointness. */
    bool checkLayout = true;
    /** REST token granule in bytes (armed-region size). */
    unsigned tokenGranule = 64;
};

/** Render a diagnostic list as one newline-separated string. */
std::string formatDiagnostics(const std::vector<Diagnostic> &diags);

/** Structural pre-instrumentation contract (see file comment). */
std::vector<Diagnostic>
verifyGeneratorContract(const isa::Program &program);

/** Full post-instrumentation invariant check (see file comment). */
std::vector<Diagnostic> verify(const isa::Program &program,
                               const VerifyOptions &opts);

/**
 * Post-optimization soundness mode: re-prove, on the transformed
 * function, what the hoisting pass claims its records establish —
 * each record's preheader group exists with the recorded window, its
 * block dominates the block of every site whose per-iteration check
 * it replaced, and the hoisted window is available (forward
 * must-dataflow) at each such site on all paths. Together with the
 * access-coverage check of verify() this shows hoisting can neither
 * mask a detection (sites stay covered) nor invent one (the
 * anticipation condition the pass enforced is recorded per site and
 * dominated by the preheader). Run it between hoisting and
 * coalescing — coalescing may widen or fold preheader groups,
 * invalidating the recorded indices.
 */
std::vector<Diagnostic>
verifyHoistedChecks(const isa::Function &fn, std::size_t func_idx,
                    const std::vector<HoistRecord> &records);

} // namespace rest::analysis

#endif // REST_ANALYSIS_VERIFIER_HH
