/**
 * @file
 * Natural-loop forest over a Cfg.
 *
 * A back edge is an edge latch -> header where the header dominates
 * the latch; its natural loop is the header plus every block that can
 * reach the latch without passing through the header. Back edges
 * sharing a header are merged into one loop, and loops nest by body
 * containment (a loop's parent is the smallest strictly-containing
 * loop).
 *
 * Retreating edges that are *not* back edges (the target does not
 * dominate the source) witness an irreducible region. The forest
 * still reports the natural loops it found, but flags the function as
 * irreducible; the hoisting pass conservatively skips such functions
 * entirely — an irreducible cycle has no unique preheader-insertion
 * point, and miscompiling is not an option.
 *
 * The forest only describes the function; synthesizing a preheader
 * mutates it and lives in the hoisting pass (analysis/hoist_checks).
 */

#ifndef REST_ANALYSIS_LOOPS_HH
#define REST_ANALYSIS_LOOPS_HH

#include <set>
#include <string>
#include <vector>

#include "analysis/cfg.hh"
#include "analysis/dominators.hh"

namespace rest::analysis
{

/** One natural loop (blocks are Cfg block ids). */
struct Loop
{
    int header = -1;            ///< the single entry block
    std::vector<int> latches;   ///< sources of back edges, ascending
    std::set<int> blocks;       ///< body, header included
    int parent = -1;            ///< index of enclosing loop, -1 if top
    int depth = 1;              ///< 1 for top-level loops

    bool contains(int block) const { return blocks.count(block) != 0; }
};

/** All natural loops of one function, innermost knowledge included. */
class LoopForest
{
  public:
    /** Build from a Cfg and its dominator tree (same Cfg instance). */
    LoopForest(const Cfg &cfg, const DomTree &dom);

    /** Loops ordered by ascending header block id. */
    const std::vector<Loop> &loops() const { return loops_; }

    /**
     * True when some reachable retreating edge is not a back edge:
     * the function has an irreducible region and loop-based
     * transforms must not touch it.
     */
    bool irreducible() const { return irreducible_; }

    /** Innermost loop containing 'block', -1 if none. */
    int innermostLoopOf(int block) const;

    /** Render headers/latches/bodies/nesting for golden tests. */
    std::string toString() const;

  private:
    std::vector<Loop> loops_;
    bool irreducible_ = false;
};

} // namespace rest::analysis

#endif // REST_ANALYSIS_LOOPS_HH
