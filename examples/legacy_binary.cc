/**
 * @file
 * Legacy-binary protection (paper §IV-A, "one key advantage"):
 * because REST checks happen in hardware, heap safety needs no
 * recompilation — only the REST allocator swapped in underneath
 * (LD_PRELOAD in real deployments).
 *
 * This example builds ONE program and never re-instruments it: the
 * same un-instrumented code is run (a) with the stock allocator and
 * (b) with the REST allocator linked in. The overflow is caught in
 * case (b) purely by the allocator's token redzones + hardware.
 */

#include <iostream>

#include "sim/experiment.hh"
#include "sim/system.hh"
#include "workload/attack_scenarios.hh"
#include "workload/spec_profiles.hh"

using namespace rest;

int
main()
{
    std::cout << "Legacy binary (no recompilation) heap protection\n\n";

    // The "legacy binary": note both configs below use schemes with
    // no code instrumentation at all -- plain and restHeap share the
    // exact same program text; only the allocator differs.
    {
        sim::System system(
            workload::attacks::heapOverflowWrite(64, 32),
            sim::makeSystemConfig(sim::ExpConfig::Plain));
        auto r = system.run();
        std::cout << "[stock allocator] faulted=" << r.faulted()
                  << "  program insts="
                  << system.program().numInsts() << "\n";
    }
    {
        sim::System system(
            workload::attacks::heapOverflowWrite(64, 32),
            sim::makeSystemConfig(sim::ExpConfig::RestSecureHeap));
        auto r = system.run();
        std::cout << "[REST allocator]  faulted=" << r.faulted()
                  << "  program insts="
                  << system.program().numInsts();
        if (r.faulted())
            std::cout << "  -> " << r.run.violation.toString();
        std::cout << "\n\n";
    }

    // And the cost of that protection on a real workload, still with
    // zero recompilation:
    auto profile = workload::profileByName("hmmer");
    profile.targetKiloInsts = 300;
    auto plain = sim::runBench(profile, sim::ExpConfig::Plain);
    auto rest_run = sim::runBench(profile,
                                  sim::ExpConfig::RestSecureHeap);
    std::cout << "hmmer-like workload, heap-only protection:\n"
              << "  plain cycles: " << plain.cycles << "\n"
              << "  REST  cycles: " << rest_run.cycles << "  ("
              << sim::overheadPct(plain.cycles, rest_run.cycles)
              << "% overhead)\n";
    return 0;
}
