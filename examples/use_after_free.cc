/**
 * @file
 * Temporal memory safety (paper §IV-A): freed allocations are filled
 * with tokens and quarantined, so dangling-pointer reads and double
 * frees trip the hardware until the chunk is finally recycled from
 * the zeroed free pool.
 */

#include <iostream>

#include "sim/experiment.hh"
#include "sim/system.hh"
#include "workload/attack_scenarios.hh"

using namespace rest;

namespace
{

void
runCase(const char *label, isa::Program prog, sim::ExpConfig config)
{
    sim::System system(std::move(prog),
                       sim::makeSystemConfig(config));
    sim::SystemResult r = system.run();
    std::cout << "  [" << label << "] faulted=" << r.faulted();
    if (r.faulted())
        std::cout << " -> " << r.run.violation.toString();
    std::cout << "\n";
}

} // namespace

int
main()
{
    std::cout << "Use-after-free: load through a dangling pointer\n";
    runCase("plain", workload::attacks::useAfterFree(128),
            sim::ExpConfig::Plain);
    runCase("REST ", workload::attacks::useAfterFree(128),
            sim::ExpConfig::RestSecureHeap);
    runCase("ASan ", workload::attacks::useAfterFree(128),
            sim::ExpConfig::Asan);

    std::cout << "\nDouble free: free() the same pointer twice\n";
    runCase("plain", workload::attacks::doubleFree(64),
            sim::ExpConfig::Plain);
    runCase("REST ", workload::attacks::doubleFree(64),
            sim::ExpConfig::RestSecureHeap);
    runCase("ASan ", workload::attacks::doubleFree(64),
            sim::ExpConfig::Asan);

    std::cout <<
        "\nThe REST quarantine keeps freed chunks armed until the\n"
        "free pool runs low; recycled chunks return zeroed (the\n"
        "relaxed invariant of paper §IV-A), so no stale data can\n"
        "leak through reuse either.\n";
    return 0;
}
