/**
 * @file
 * Quickstart: build a tiny guest program with the public API, run it
 * on a REST-protected system, and watch the hardware catch an
 * out-of-bounds write.
 *
 * Demonstrates the core flow every other example follows:
 *   1. write (or generate) an isa::Program,
 *   2. pick a SystemConfig (protection scheme, mode, token width),
 *   3. construct a sim::System and run() it,
 *   4. inspect the SystemResult.
 */

#include <iostream>

#include "sim/experiment.hh"
#include "sim/system.hh"

using namespace rest;

namespace
{

/** A program that overflows a 64-byte heap buffer on purpose. */
isa::Program
buggyProgram()
{
    isa::FuncBuilder b("main");

    // r1 = malloc(64)
    b.movImm(13, 64);
    b.emit({isa::Opcode::RtMalloc, isa::noReg, 13, isa::noReg, 8, 0,
            -1, -1});
    b.mov(1, isa::regRet);

    // for (i = 0; i < 12; ++i) buf[i] = i;   // 12 * 8 = 96 > 64!
    b.movImm(2, 12);
    b.mov(3, 1);
    int loop = b.here();
    b.store(2, 3, 0, 8);
    b.addI(3, 3, 8);
    b.addI(2, 2, -1);
    b.branch(isa::Opcode::Bne, 2, isa::regZero, loop);
    b.halt();

    isa::Program prog;
    prog.funcs.push_back(std::move(b).take());
    return prog;
}

} // namespace

int
main()
{
    std::cout << "REST quickstart: a 96-byte sweep over a 64-byte "
                 "heap buffer\n\n";

    // 1) Unprotected run: the overflow corrupts memory silently.
    {
        sim::System system(buggyProgram(),
                           sim::makeSystemConfig(sim::ExpConfig::Plain));
        sim::SystemResult r = system.run();
        std::cout << "[plain]  faulted=" << r.faulted()
                  << "  cycles=" << r.cycles()
                  << "  (corruption went unnoticed)\n";
    }

    // 2) REST-protected run: the token redzone trips the sweep.
    {
        sim::System system(
            buggyProgram(),
            sim::makeSystemConfig(sim::ExpConfig::RestSecureHeap));
        sim::SystemResult r = system.run();
        std::cout << "[REST]   faulted=" << r.faulted();
        if (r.faulted())
            std::cout << "  -> " << r.run.violation.toString();
        std::cout << "\n";
    }

    // 3) Debug mode: same detection, precise reporting.
    {
        sim::System system(
            buggyProgram(),
            sim::makeSystemConfig(sim::ExpConfig::RestDebugHeap));
        sim::SystemResult r = system.run();
        std::cout << "[debug]  faulted=" << r.faulted();
        if (r.faulted())
            std::cout << "  -> " << r.run.violation.toString();
        std::cout << "\n";
    }

    return 0;
}
