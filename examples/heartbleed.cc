/**
 * @file
 * The paper's motivating example (Listing 1 / Fig. 1): a
 * Heartbleed-style over-read where an attacker-controlled memcpy
 * length walks past a request buffer into adjacent secrets.
 *
 * The example shows the leaked bytes on unprotected hardware, then
 * the REST token redzone stopping the same copy cold.
 */

#include <iomanip>
#include <iostream>

#include "sim/experiment.hh"
#include "sim/system.hh"
#include "workload/attack_scenarios.hh"

using namespace rest;

namespace
{

constexpr std::uint32_t benignLen = 64;   // the real request payload
constexpr std::uint32_t attackLen = 256;  // attacker-claimed length

void
showResponse(sim::System &system, Addr response, unsigned bytes)
{
    auto &memory = system.memory();
    for (unsigned i = 0; i < bytes; i += 16) {
        std::cout << "    +" << std::setw(3) << i << ": ";
        for (unsigned j = 0; j < 16; ++j) {
            std::cout << std::hex << std::setw(2) << std::setfill('0')
                      << unsigned(memory.readByte(response + i + j))
                      << std::dec << std::setfill(' ') << " ";
        }
        std::cout << "\n";
    }
}

} // namespace

int
main()
{
    std::cout <<
        "Heartbleed reproduction: memcpy(response, request, "
        << attackLen << ") over a " << benignLen
        << "-byte request buffer\n"
        "(request bytes are 0x11, the adjacent 'secret' is 0xa5)\n\n";

    // ---- Unprotected: secrets leak into the response ----
    {
        sim::System system(
            workload::attacks::heartbleed(benignLen, attackLen),
            sim::makeSystemConfig(sim::ExpConfig::Plain));
        sim::SystemResult r = system.run();
        std::cout << "[plain] faulted=" << r.faulted()
                  << " -- response contents:\n";
        // The attack program allocates request, secret, response in
        // that order; find the response (3rd live allocation) by
        // probing: it's the largest live chunk.
        // For the example we simply re-derive it: the copy's source
        // was the first chunk; scan the heap for the 0x11 run, then
        // show what followed it in the response.
        // Simpler: the response buffer is the last allocation, and
        // the attack stored its address in guest r5; read it from
        // the emulator.
        Addr response = system.emulator().reg(5);
        showResponse(system, response, 160);
        unsigned leaked = 0;
        auto &memory = system.memory();
        for (unsigned i = benignLen; i < attackLen; ++i)
            leaked += (memory.readByte(response + i) == 0xa5);
        std::cout << "  -> " << leaked
                  << " secret bytes (0xa5) leaked past the buffer\n\n";
    }

    // ---- REST heap protection (works on legacy binaries) ----
    {
        sim::System system(
            workload::attacks::heartbleed(benignLen, attackLen),
            sim::makeSystemConfig(sim::ExpConfig::RestSecureHeap));
        sim::SystemResult r = system.run();
        std::cout << "[REST]  faulted=" << r.faulted();
        if (r.faulted())
            std::cout << " -> " << r.run.violation.toString();
        std::cout << "\n";
        Addr response = system.emulator().reg(5);
        unsigned leaked = 0;
        auto &memory = system.memory();
        for (unsigned i = benignLen; i < attackLen; ++i)
            leaked += (memory.readByte(response + i) == 0xa5);
        std::cout << "  -> " << leaked
                  << " secret bytes leaked (copy stopped at the "
                     "token redzone)\n";
    }

    return 0;
}
