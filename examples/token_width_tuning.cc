/**
 * @file
 * Token-width tuning (paper §III-B "Modifying Token Width", §V-C,
 * Fig. 8): narrower tokens shrink the false-negative alignment pad —
 * at essentially unchanged performance — while wider tokens maximise
 * the brute-force guessing margin.
 */

#include <iostream>

#include "sim/experiment.hh"
#include "sim/system.hh"
#include "workload/attack_scenarios.hh"
#include "workload/spec_profiles.hh"

using namespace rest;

int
main()
{
    std::cout << "Token width vs. detection granularity\n"
              << "(8-byte overflow past a 16-byte stack buffer)\n\n";

    for (auto width : {core::TokenWidth::Bytes16,
                       core::TokenWidth::Bytes32,
                       core::TokenWidth::Bytes64}) {
        sim::System system(
            workload::attacks::stackPadOverflow(16, 8),
            sim::makeSystemConfig(sim::ExpConfig::RestSecureFull,
                                  width));
        auto r = system.run();
        std::cout << "  " << core::tokenBytes(width)
                  << "B tokens: detected=" << r.faulted()
                  << (r.faulted()
                          ? "  (pad closed, overflow caught)"
                          : "  (landed in the alignment pad: the "
                            "Sec. V-C false negative)")
                  << "\n";
    }

    std::cout << "\nToken width vs. performance (gobmk-like)\n";
    auto profile = workload::profileByName("gobmk");
    profile.targetKiloInsts = 300;
    auto plain = sim::runBench(profile, sim::ExpConfig::Plain);
    for (auto width : {core::TokenWidth::Bytes16,
                       core::TokenWidth::Bytes32,
                       core::TokenWidth::Bytes64}) {
        auto m = sim::runBench(profile, sim::ExpConfig::RestSecureFull,
                               width);
        std::cout << "  " << core::tokenBytes(width) << "B tokens: "
                  << sim::overheadPct(plain.cycles, m.cycles)
                  << "% overhead, " << m.detail.armsExecuted
                  << " arms executed\n";
    }
    std::cout << "\nPaper Fig. 8's conclusion: pick robustness freely;"
              << " width barely moves performance.\n";
    return 0;
}
