/**
 * @file
 * Reproduces paper Figure 3: the breakdown of ASan's overhead into
 * its four components — allocator, stack frame setup, memory access
 * validation, and libc API interception — measured on an in-order
 * core (the paper's Fig. 3 setup) by enabling the components
 * cumulatively and differencing.
 *
 * The level sweep runs on the parallel sweep runner (--jobs N);
 * results are written to BENCH_fig3.json.
 */

#include "bench_util.hh"

using namespace rest;

namespace
{

/** Cumulative component stack, in the paper's legend order. */
runtime::SchemeConfig
schemeUpTo(int level)
{
    runtime::SchemeConfig s;
    if (level >= 1)
        s.allocator = runtime::AllocatorKind::Asan; // 1: allocator
    if (level >= 2)
        s.asanStackSetup = true;                    // 2: stack setup
    if (level >= 3)
        s.asanAccessChecks = true;                  // 3: access checks
    if (level >= 4)
        s.asanIntercept = true;                     // 4: API intercept
    return s;
}

} // namespace

int
main(int argc, char **argv)
{
    auto opt = bench::parseOptions(argc, argv, "fig3");
    bench::installGlobalTrace(opt);
    bench::installGlobalTelemetry(opt);

    std::cout
        << "=====================================================\n"
        << "Figure 3: breakdown of ASan overhead components (%)\n"
        << "(in-order core; components enabled cumulatively)\n"
        << "=====================================================\n";

    // Level 0 (plain scheme, in-order core) is the baseline column;
    // columns are carried as explicit custom configs because the
    // in-order default baseline is not a preset.
    const char *level_names[] = {"Baseline", "Allocator", "StackSetup",
                                 "AccessValid", "APIIntercept"};
    std::vector<bench::MatrixColumn> columns;
    for (int level = 0; level <= 4; ++level) {
        sim::SystemConfig cfg;
        cfg.scheme = schemeUpTo(level);
        cfg.useInOrderCpu = true; // Fig. 3 uses an in-order core
        columns.push_back(bench::customColumn(level_names[level], cfg));
    }
    // The full stack again with redundant-check elision: how much of
    // the access-validation component static analysis can trim.
    {
        sim::SystemConfig cfg;
        cfg.scheme = schemeUpTo(4);
        cfg.scheme.elideRedundantChecks = true;
        cfg.useInOrderCpu = true;
        columns.push_back(bench::customColumn("ChkElision", cfg));
    }
    // ... and with the loop optimizer on top: invariant checks hoisted
    // to preheaders and adjacent windows coalesced.
    {
        sim::SystemConfig cfg;
        cfg.scheme = schemeUpTo(4);
        cfg.scheme.elideRedundantChecks = true;
        cfg.scheme.hoistLoopChecks = true;
        cfg.scheme.coalesceChecks = true;
        cfg.useInOrderCpu = true;
        columns.push_back(bench::customColumn("ChkHoist", cfg));
    }

    auto mat = bench::runMatrix("asan_breakdown",
                                workload::specSuite(), columns,
                                opt, /*with_baseline=*/false);

    bench::printHeader({"Allocator", "StackSetup", "AccessValid",
                        "APIIntercept", "Total", "Total+Elide",
                        "Total+Elide+Hoist"});
    const double nan = std::numeric_limits<double>::quiet_NaN();
    for (std::size_t r = 0; r < mat.rowNames.size(); ++r) {
        // Differencing needs every cumulative level of the row; if
        // any level failed, the components that touch it are
        // undefined and print as "error".
        auto ok = [&](std::size_t level) { return mat.cellOk[level][r]; };
        Cycles base = mat.cells[0][r];
        std::vector<double> row;
        Cycles prev = base;
        for (std::size_t level = 1; level <= 4; ++level) {
            Cycles cur = mat.cells[level][r];
            row.push_back(ok(0) && ok(level - 1) && ok(level)
                              ? 100.0 * (double(cur) - double(prev)) /
                                    double(base)
                              : nan);
            prev = cur;
        }
        row.push_back(ok(0) && ok(4)
                          ? 100.0 * (double(prev) - double(base)) /
                                double(base)
                          : nan);
        row.push_back(ok(0) && ok(5)
                          ? 100.0 * (double(mat.cells[5][r]) -
                                     double(base)) / double(base)
                          : nan);
        row.push_back(ok(0) && ok(6)
                          ? 100.0 * (double(mat.cells[6][r]) -
                                     double(base)) / double(base)
                          : nan);
        bench::printRow(mat.rowNames[r], row);
    }

    std::cout << "\nPaper reference: memory-access validation is the "
                 "most persistent component;\nthe allocator dominates "
                 "for allocation-heavy gcc/xalancbmk.\n"
                 "Total+Elide repeats the full stack with statically "
                 "provable redundant checks deleted;\n"
                 "Total+Elide+Hoist additionally hoists loop-invariant "
                 "checks and coalesces adjacent windows.\n";

    bench::writeResults(opt, "fig3", {std::move(mat.sweep)});
    return 0;
}
