/**
 * @file
 * Reproduces paper Figure 3: the breakdown of ASan's overhead into
 * its four components — allocator, stack frame setup, memory access
 * validation, and libc API interception — measured on an in-order
 * core (the paper's Fig. 3 setup) by enabling the components
 * cumulatively and differencing.
 */

#include "bench_util.hh"

using namespace rest;
using sim::ExpConfig;

namespace
{

/** Cumulative component stack, in the paper's legend order. */
runtime::SchemeConfig
schemeUpTo(int level)
{
    runtime::SchemeConfig s;
    if (level >= 1)
        s.allocator = runtime::AllocatorKind::Asan; // 1: allocator
    if (level >= 2)
        s.asanStackSetup = true;                    // 2: stack setup
    if (level >= 3)
        s.asanAccessChecks = true;                  // 3: access checks
    if (level >= 4)
        s.asanIntercept = true;                     // 4: API intercept
    return s;
}

Cycles
measureLevel(const workload::BenchProfile &base, int level)
{
    double total = 0;
    unsigned seeds = bench::numSeeds();
    for (unsigned s = 0; s < seeds; ++s) {
        workload::BenchProfile p = base;
        p.targetKiloInsts = bench::kiloInsts();
        p.seed = base.seed + 0x1000 * s;
        sim::SystemConfig cfg;
        cfg.scheme = schemeUpTo(level);
        cfg.useInOrderCpu = true; // Fig. 3 uses an in-order core
        sim::System system(workload::generate(p), cfg);
        auto r = system.run();
        total += static_cast<double>(r.cycles());
    }
    return static_cast<Cycles>(total / seeds);
}

} // namespace

int
main()
{
    std::cout
        << "=====================================================\n"
        << "Figure 3: breakdown of ASan overhead components (%)\n"
        << "(in-order core; components enabled cumulatively)\n"
        << "=====================================================\n";
    bench::printHeader({"Allocator", "StackSetup", "AccessValid",
                        "APIIntercept", "Total"});

    for (const auto &profile : workload::specSuite()) {
        Cycles base = measureLevel(profile, 0);
        std::vector<double> row;
        Cycles prev = base;
        for (int level = 1; level <= 4; ++level) {
            Cycles cur = measureLevel(profile, level);
            row.push_back(100.0 * (double(cur) - double(prev)) /
                          double(base));
            prev = cur;
        }
        row.push_back(100.0 * (double(prev) - double(base)) /
                      double(base));
        bench::printRow(profile.name, row);
    }

    std::cout << "\nPaper reference: memory-access validation is the "
                 "most persistent component;\nthe allocator dominates "
                 "for allocation-heavy gcc/xalancbmk.\n";
    return 0;
}
