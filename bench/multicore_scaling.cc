/**
 * @file
 * Multicore scaling study (DESIGN.md §16): how does each protection
 * scheme's overhead behave when the paper's single-core evaluation
 * machine becomes an N-core MESI-coherent server?
 *
 * Three measurements, all on the Zipf server mix
 * (workload/server_mix.hh) over sim::MultiCoreSystem:
 *
 *   1. Scaling sweep: core counts (powers of two up to --cores) ×
 *      registered schemes, detailed timing. The printed table and
 *      the "scaling" sweep in the JSON carry overhead vs the plain
 *      machine at the same core count, per-core CPI and the
 *      coherence-bus traffic counters.
 *   2. Concurrency attack matrix: the three cross-thread attack
 *      scenarios (workload/attack_scenarios.hh) on a detailed
 *      >=2-core machine per scheme, verdicts checked against each
 *      scheme's declared DetectionProfile — the multicore analogue of
 *      tab3's conformance gate (a mismatch fails the run). REST's
 *      cross-thread verdicts flow through the per-L1 token detector
 *      on real coherence transfers.
 *   3. --perf: simulator-throughput probe (KIPS, detailed vs
 *      fast-functional) of the multicore machine itself, recorded as
 *      the standard "perf" block so bench/perf_report can guard the
 *      committed trajectory.
 *
 * Results land in BENCH_multicore.json using the standard results
 * schema (sim/results.hh): one "scaling" sweep shaped rows=cores ×
 * columns=schemes, and one "concurrency_attacks" sweep shaped
 * rows=scenarios × columns=schemes whose cells carry the verdicts as
 * scalars.
 */

#include <chrono>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <vector>

#include "bench_util.hh"
#include "sim/multicore.hh"
#include "sim/scheme_matrix.hh"
#include "util/logging.hh"
#include "workload/server_mix.hh"

using namespace rest;

namespace
{

/** Token/tag seed shared by every run (tab3's matrix seed). */
constexpr std::uint64_t tokenSeed = 0xc0ffee;

/** Power-of-two core counts up to 'max_cores', plus max itself. */
std::vector<unsigned>
coreCounts(unsigned max_cores)
{
    std::vector<unsigned> counts;
    for (unsigned n = 1; n <= max_cores; n *= 2)
        counts.push_back(n);
    if (counts.back() != max_cores)
        counts.push_back(max_cores);
    return counts;
}

/** Resolve --schemes like tab3 does; empty = every registered one. */
std::vector<std::pair<const runtime::ProtectionScheme *,
                      runtime::SchemeConfig>>
resolveSchemes(const std::string &csv)
{
    std::vector<std::pair<const runtime::ProtectionScheme *,
                          runtime::SchemeConfig>> out;
    if (csv.empty()) {
        for (const runtime::ProtectionScheme *ps : runtime::allSchemes())
            out.emplace_back(ps, ps->baseConfig());
        return out;
    }
    std::stringstream ss(csv);
    std::string item;
    while (std::getline(ss, item, ',')) {
        if (item.empty())
            continue;
        runtime::SchemeConfig cfg;
        std::string err;
        if (!runtime::parseSchemeSpec(item, cfg, err)) {
            std::cerr << "multicore: --schemes: " << err
                      << "; registered:";
            for (const runtime::ProtectionScheme *ps :
                 runtime::allSchemes())
                std::cerr << " " << ps->id();
            std::cerr << "\n";
            std::exit(1);
        }
        out.emplace_back(&runtime::schemeForConfig(cfg), cfg);
    }
    return out;
}

/** The server mix at one core count, sized from REST_BENCH_KILOINSTS
 *  (requests, not ops: each request is a few hundred ops). */
workload::ServerMixConfig
mixConfig(unsigned cores)
{
    workload::ServerMixConfig wl;
    wl.cores = cores;
    wl.requestsPerCore =
        std::max<std::uint64_t>(4, bench::kiloInsts() / 16);
    return wl;
}

/** One machine run plus everything the tables and JSON consume. */
struct McRun
{
    sim::MultiCoreResult res;
    std::map<std::string, std::uint64_t> scalars;
    double simWallSeconds = 0.0;
    bool ok = false;          ///< retired cleanly (no fault)
    std::string error;
};

/** Run the server mix: 'cores' cores under 'scheme'. */
McRun
runMix(const runtime::SchemeConfig &scheme, unsigned cores,
       bool fast_functional)
{
    McRun out;
    sim::MultiCoreConfig mc;
    mc.base.scheme = scheme;
    mc.base.tokenSeed = tokenSeed;
    mc.base.exec.fastFunctional = fast_functional;
    mc.cores = cores;
    sim::MultiCoreSystem sys(workload::serverMix(mixConfig(cores)), mc);

    const auto t0 = std::chrono::steady_clock::now();
    out.res = sys.run();
    out.simWallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();

    if (out.res.faulted()) {
        // The server mix is benign: a fault here is a scheme bug
        // (e.g. a false positive), not a measurement.
        std::ostringstream err;
        err << "benign server mix faulted on core " << out.res.faultCore
            << " (" << out.res.violation().toString() << ")";
        out.error = err.str();
        return out;
    }
    out.ok = true;

    auto snap = [&out](const std::string &name, std::uint64_t v) {
        out.scalars.emplace(name, v);
    };
    for (unsigned c = 0; c < cores; ++c) {
        const cpu::RunResult &r = out.res.cores[c];
        const std::string prefix = "core" + std::to_string(c) + ".";
        snap(prefix + "cycles", r.cycles);
        snap(prefix + "ops", r.committedOps);
        // CPI in milli-units: the scalar map is integral.
        snap(prefix + "cpi_milli",
             r.committedOps
                 ? std::uint64_t(double(r.cycles) * 1000.0 /
                                 double(r.committedOps))
                 : 0);
    }
    if (sys.bus())
        sys.bus()->statGroup().forEachScalar(snap);
    snap("mc.arms_executed", out.res.armsExecuted);
    snap("mc.disarms_executed", out.res.disarmsExecuted);
    snap("mc.malloc_calls", out.res.mallocCalls);
    snap("mc.free_calls", out.res.freeCalls);
    return out;
}

/** Machine CPI over all cores; NaN when nothing retired. */
double
machineCpi(const sim::MultiCoreResult &res)
{
    return res.committedOps
               ? double(res.cycles) / double(res.committedOps)
               : std::numeric_limits<double>::quiet_NaN();
}

/** KIPS probe of the multicore machine (best of 'reps', like
 *  bench::measureKips: one warmup, fastest timed run). */
double
probeKips(const runtime::SchemeConfig &scheme, unsigned cores,
          bool fast_functional, unsigned reps = 3)
{
    double best = 0.0;
    runMix(scheme, cores, fast_functional);
    for (unsigned r = 0; r < reps; ++r) {
        McRun run = runMix(scheme, cores, fast_functional);
        if (run.ok && run.simWallSeconds > 0)
            best = std::max(best, double(run.res.committedOps) /
                                      1000.0 / run.simWallSeconds);
    }
    return best;
}

} // namespace

int
main(int argc, char **argv)
{
    auto opt = bench::parseOptions(argc, argv, "multicore");
    bench::installGlobalTrace(opt);
    bench::installGlobalTelemetry(opt);
    if (opt.exec.sampling.active()) {
        std::cerr << "multicore: sampled execution is not supported "
                  << "on the multicore machine\n";
        return 2;
    }

    const auto selected = resolveSchemes(opt.schemes);
    const std::vector<unsigned> counts = coreCounts(opt.cores);
    const workload::ServerMixConfig shape = mixConfig(opt.cores);

    std::cout << "====================================================\n"
              << "Multicore scaling: " << opt.workload << " mix, "
              << shape.requestsPerCore << " requests/core, Zipf("
              << shape.hotObjects << ", " << shape.zipfTheta << ")\n"
              << "MESI bus + shared L2/DRAM; detection per private L1\n"
              << "====================================================\n";

    // ---- 1. The scaling sweep: core counts × schemes ----
    // Columns keyed by registry id; the plain machine is always the
    // "Plain" baseline column, selected or not.
    std::vector<std::pair<std::string, runtime::SchemeConfig>> columns;
    columns.emplace_back("Plain", runtime::SchemeConfig::plain());
    for (const auto &[scheme, cfg] : selected)
        if (std::string(scheme->id()) != "plain")
            columns.emplace_back(scheme->id(), cfg);

    sim::SweepResults scaling;
    scaling.name = "scaling";
    for (const auto &[name, cfg] : columns)
        scaling.columns.push_back(name);

    bool all_ok = true;
    // runs[column name][row index] mirrors runMatrix's aggregation.
    std::map<std::string, std::vector<McRun>> runs;
    for (unsigned cores : counts) {
        const std::string row = "cores=" + std::to_string(cores);
        scaling.rows.push_back(row);
        for (const auto &[col, cfg] : columns) {
            McRun run = runMix(cfg, cores, opt.exec.fastFunctional);
            if (!run.ok) {
                all_ok = false;
                rest_warn("multicore: ", col, " @ ", row, ": ",
                          run.error);
            }

            sim::SweepCell cell;
            cell.bench = row;
            cell.column = col;
            cell.ok = run.ok;
            cell.error = run.error;
            if (run.ok) {
                cell.cycles = run.res.cycles;
                cell.ops = run.res.committedOps;
                cell.seedCycles.push_back(run.res.cycles);
                cell.scalars = run.scalars;
                if (run.res.fastFunctional)
                    cell.execMode = "fast-functional";
                if (col == "Plain")
                    scaling.baselineCycles[row] = run.res.cycles;
            }
            scaling.cells.push_back(std::move(cell));
            runs[col].push_back(std::move(run));
        }
    }

    // Per-column aggregate overhead across core counts (the standard
    // optional means; rows where either side failed are skipped).
    for (const std::string &col : scaling.columns) {
        if (col == "Plain")
            continue;
        std::vector<Cycles> base, cyc;
        for (std::size_t r = 0; r < counts.size(); ++r) {
            if (!runs["Plain"][r].ok || !runs[col][r].ok)
                continue;
            base.push_back(runs["Plain"][r].res.cycles);
            cyc.push_back(runs[col][r].res.cycles);
        }
        const double nan = std::numeric_limits<double>::quiet_NaN();
        scaling.wtdAriMeanPct[col] =
            base.empty() ? nan
                         : sim::wtdAriMeanOverheadPct(base, cyc);
        scaling.geoMeanPct[col] =
            base.empty() ? nan : sim::geoMeanOverheadPct(base, cyc);
    }

    // Overhead vs the plain machine at the same core count.
    std::cout << "\nOverhead vs plain at equal core count (%"
              << (opt.exec.fastFunctional
                      ? ", fast-functional: nominal cycles"
                      : "")
              << "):\n";
    std::vector<std::string> overhead_cols(scaling.columns.begin() + 1,
                                           scaling.columns.end());
    bench::printHeader(overhead_cols);
    for (std::size_t r = 0; r < counts.size(); ++r) {
        std::vector<double> row;
        for (const std::string &col : overhead_cols) {
            const McRun &plain = runs["Plain"][r];
            const McRun &cell = runs[col][r];
            row.push_back(
                plain.ok && cell.ok
                    ? sim::overheadPct(plain.res.cycles,
                                       cell.res.cycles)
                    : std::numeric_limits<double>::quiet_NaN());
        }
        bench::printRow(scaling.rows[r], row);
    }

    // Machine CPI (cycles of the slowest core per machine-wide op).
    std::cout << "\nMachine CPI (slowest core's clock / total ops):\n";
    bench::printHeader(scaling.columns);
    for (std::size_t r = 0; r < counts.size(); ++r) {
        std::vector<double> row;
        for (const std::string &col : scaling.columns) {
            const McRun &cell = runs[col][r];
            row.push_back(cell.ok
                              ? machineCpi(cell.res)
                              : std::numeric_limits<double>::quiet_NaN());
        }
        bench::printRow(scaling.rows[r], row);
    }

    // Coherence traffic: invalidations + cache-to-cache transfers per
    // kilo-op, machine-wide (zeros on the bus-less 1-core machine).
    std::cout << "\nCoherence traffic (invalidations+transfers per "
              << "kilo-op):\n";
    bench::printHeader(scaling.columns);
    for (std::size_t r = 0; r < counts.size(); ++r) {
        std::vector<double> row;
        for (const std::string &col : scaling.columns) {
            const McRun &cell = runs[col][r];
            if (!cell.ok || !cell.res.committedOps) {
                row.push_back(std::numeric_limits<double>::quiet_NaN());
                continue;
            }
            auto scalar = [&cell](const char *name) -> double {
                auto it = cell.scalars.find(name);
                return it == cell.scalars.end() ? 0.0
                                                : double(it->second);
            };
            row.push_back((scalar("coherence_bus.invalidations") +
                           scalar("coherence_bus.transfers")) *
                          1000.0 / double(cell.res.committedOps));
        }
        bench::printRow(scaling.rows[r], row);
    }

    // ---- 2. The concurrency attack matrix ----
    const unsigned attack_cores = std::max(2u, std::min(opt.cores, 4u));
    std::cout << "\nConcurrency attacks on a detailed " << attack_cores
              << "-core machine (C = caught, . = missed):\n";
    sim::SweepResults attacks;
    attacks.name = "concurrency_attacks";
    for (const sim::ConcurrencyScenarioInfo &s :
         sim::concurrencyScenarios())
        attacks.rows.push_back(s.key);

    std::vector<sim::ConcurrencyVerdicts> verdicts;
    std::vector<bool> conforms;
    bool all_conform = true;
    for (const auto &[scheme, cfg] : selected) {
        attacks.columns.push_back(scheme->id());
        sim::ConcurrencyVerdicts v = sim::measureSchemeMulticore(
            cfg, attack_cores, /*detailed=*/true, tokenSeed);
        const bool c = sim::matchesConcurrencyProfile(
            v, scheme->declaredProfile());
        all_conform &= c;
        verdicts.push_back(v);
        conforms.push_back(c);
    }
    std::cout << std::left << std::setw(26) << "  scenario";
    for (const auto &v : verdicts)
        std::cout << std::setw(9) << v.scheme;
    std::cout << "\n";
    for (const sim::ConcurrencyScenarioInfo &s :
         sim::concurrencyScenarios()) {
        std::cout << "  " << std::left << std::setw(24) << s.key;
        for (std::size_t i = 0; i < verdicts.size(); ++i)
            std::cout << std::setw(9)
                      << (verdicts[i].*(s.measured) ? "C" : ".");
        std::cout << "\n";
        for (std::size_t i = 0; i < verdicts.size(); ++i) {
            sim::SweepCell cell;
            cell.bench = s.key;
            cell.column = attacks.columns[i];
            cell.scalars["caught"] = verdicts[i].*(s.measured) ? 1 : 0;
            cell.scalars["declared_caught"] =
                selected[i].first->declaredProfile().*(s.declared) ==
                        runtime::Expect::Caught
                    ? 1
                    : 0;
            cell.scalars["conforms"] = conforms[i] ? 1 : 0;
            attacks.cells.push_back(std::move(cell));
        }
    }
    for (std::size_t i = 0; i < verdicts.size(); ++i)
        if (!conforms[i])
            std::cout << "\nCONFORMANCE FAILURE: " << verdicts[i].scheme
                      << " cross-thread verdicts do not match its "
                      << "declared profile\n";

    // ---- 3. --perf: multicore simulator throughput ----
    sim::PerfRecord perf;
    if (opt.perfProbe) {
        const runtime::SchemeConfig rest_cfg =
            runtime::SchemeConfig::restFull();
        perf.bench = "server_mix@" + std::to_string(opt.cores) +
                     "-core";
        perf.kiloInsts = bench::kiloInsts();
        perf.kipsDetailed = probeKips(rest_cfg, opt.cores, false);
        perf.kipsFastFunctional = probeKips(rest_cfg, opt.cores, true);
        if (perf.kipsDetailed > 0)
            perf.speedupFastFunctional =
                perf.kipsFastFunctional / perf.kipsDetailed;
        std::cout << "\nSimulator throughput (" << perf.bench
                  << ", KIPS): detailed " << std::fixed
                  << std::setprecision(1) << perf.kipsDetailed
                  << ", fast-functional " << perf.kipsFastFunctional
                  << " (" << std::setprecision(1)
                  << perf.speedupFastFunctional << "x)\n";
    }

    std::vector<sim::SweepResults> sweeps;
    sweeps.push_back(std::move(scaling));
    sweeps.push_back(std::move(attacks));
    bench::writeResults(opt, "multicore", std::move(sweeps), perf);
    return all_ok && all_conform ? 0 : 1;
}
