/**
 * @file
 * trace_demo: exercises the rest::trace observability layer end to
 * end on a real simulated system.
 *
 *   1. Runs one benchmark with a per-System trace sink: debug flags
 *      (--debug-flags), a Chrome trace-event export (--trace-out,
 *      loadable in Perfetto / chrome://tracing), an O3PipeView
 *      instruction trace (--pipeview-out, Konata-compatible; written
 *      by default when O3Pipe is enabled), and periodic stat
 *      snapshots (--stats-every, default 10000 cycles).
 *   2. Runs a small sweep whose per-interval stat deltas surface in
 *      the BENCH_trace_demo.json results file ("stat_series").
 *
 * Example:
 *   trace_demo --trace-out t.json --debug-flags=O3Pipe,Cache
 */

#include "bench_util.hh"
#include "sim/system.hh"

using namespace rest;

int
main(int argc, char **argv)
{
    auto opt = bench::parseOptions(argc, argv, "trace_demo");
    bench::installGlobalTelemetry(opt);

    // Per-System sink (not the process-global one): the System writes
    // the configured outputs itself at the end of run().
    trace::TraceConfig tcfg = opt.traceConfig();
    if (tcfg.flags == 0)
        tcfg.flags = trace::TraceConfig::fromEnv().flags;
    if (tcfg.statsEvery == 0)
        tcfg.statsEvery = 10000;
    if (tcfg.pipeViewPath.empty() &&
        (tcfg.flags & trace::flagBit(trace::Flag::O3Pipe))) {
        tcfg.pipeViewPath = "trace_demo.pipeview";
    }

    std::cout << "==============================================\n"
              << "trace_demo: the rest::trace layer, end to end\n"
              << "==============================================\n";

    sim::SystemConfig cfg =
        sim::makeSystemConfig(sim::ExpConfig::RestSecureFull);
    cfg.trace = tcfg;
    auto profile = workload::profileByName("xalancbmk");
    profile.targetKiloInsts = bench::kiloInsts();

    sim::System system(workload::generate(profile), cfg);
    sim::SystemResult result = system.run();

    std::cout << "\nbench " << profile.name << " (SecureFull): "
              << result.cycles() << " cycles, "
              << result.run.committedOps << " ops\n";

    trace::TraceSink *sink = system.traceSink();
    std::cout << "trace events: " << sink->eventsRecorded()
              << " recorded, " << sink->eventsDropped()
              << " dropped, " << sink->trackNames().size()
              << " tracks\n"
              << "pipeview records: " << sink->pipeRecords().size()
              << "\n";
    if (!tcfg.traceOutPath.empty())
        std::cout << "chrome trace: " << tcfg.traceOutPath << "\n";
    if (!tcfg.pipeViewPath.empty())
        std::cout << "o3 pipeview: " << tcfg.pipeViewPath << "\n";

    // The periodic time series, as a small table (first 8 intervals).
    auto series = system.statSnapshots();
    std::cout << "\nstat snapshots every " << tcfg.statsEvery
              << " cycles: " << series.size() << " intervals\n";
    std::cout << std::left << std::setw(12) << "cycle" << std::right
              << std::setw(14) << "d_ops" << std::setw(14)
              << "d_l1d_miss" << std::setw(14) << "d_l2_miss" << "\n"
              << std::string(54, '-') << "\n";
    std::size_t shown = 0;
    for (const auto &snap : series) {
        if (shown++ >= 8) {
            std::cout << "  ... (" << series.size() - 8 << " more)\n";
            break;
        }
        auto delta = [&snap](const char *key) -> std::uint64_t {
            auto it = snap.deltas.find(key);
            return it == snap.deltas.end() ? 0 : it->second;
        };
        std::cout << std::left << std::setw(12) << snap.cycle
                  << std::right << std::setw(14)
                  << delta("o3cpu.committed_ops") << std::setw(14)
                  << delta("l1d.misses") << std::setw(14)
                  << delta("l2.misses") << "\n";
    }

    // A small sweep whose cells carry the per-interval deltas into
    // the results JSON ("stat_series").
    sim::SystemConfig stats_cfg =
        sim::makeSystemConfig(sim::ExpConfig::RestSecureFull);
    stats_cfg.trace.statsEvery = tcfg.statsEvery;
    const std::vector<bench::MatrixColumn> columns = {
        bench::customColumn("SecureFullStats", stats_cfg),
    };
    const std::vector<workload::BenchProfile> rows = {
        workload::profileByName("bzip2"),
        workload::profileByName("astar"),
    };
    std::cout << "\nsweep with per-interval stats (overhead %):\n";
    auto mat = bench::runMatrix("stats_series", rows, columns, opt);
    bench::printOverheadTable(mat);
    bench::writeResults(opt, "trace_demo", {std::move(mat.sweep)});
    return 0;
}
