/**
 * @file
 * google-benchmark microbenchmarks of the building blocks: the token
 * detector, REST L1-D operations, LSQ matching, the TAGE predictor,
 * the allocators' service costs (in emitted guest ops), and raw
 * simulator throughput.
 */

#include <benchmark/benchmark.h>


#include "core/rest_engine.hh"
#include "cpu/bpred.hh"
#include "cpu/lsq.hh"
#include "mem/cache.hh"
#include "mem/dram.hh"
#include "mem/rest_l1_cache.hh"
#include "runtime/asan_allocator.hh"
#include "runtime/libc_allocator.hh"
#include "runtime/rest_allocator.hh"
#include "sim/experiment.hh"
#include "sim/sweep.hh"
#include "workload/spec_profiles.hh"

using namespace rest;

namespace
{

struct Rig
{
    Rig()
    {
        Xoshiro256ss rng(5);
        tcr.writePrivileged(
            core::TokenValue::generate(rng, core::TokenWidth::Bytes64),
            core::RestMode::Secure);
        dram = std::make_unique<mem::Dram>();
        l2 = std::make_unique<mem::Cache>(mem::CacheConfig::l2(),
                                          *dram);
        l1 = std::make_unique<mem::RestL1Cache>(mem::CacheConfig::l1d(),
                                                *l2, memory, tcr);
    }

    mem::GuestMemory memory;
    core::TokenConfigRegister tcr;
    std::unique_ptr<mem::Dram> dram;
    std::unique_ptr<mem::Cache> l2;
    std::unique_ptr<mem::RestL1Cache> l1;
};

void
BM_TokenDetectorScan(benchmark::State &state)
{
    Rig rig;
    mem::TokenDetector detector(rig.memory, rig.tcr);
    rig.memory.writeBytes(0x1000, rig.tcr.token().bytes());
    for (auto _ : state)
        benchmark::DoNotOptimize(detector.scan(0x1000, 64));
}
BENCHMARK(BM_TokenDetectorScan);

void
BM_RestL1LoadHit(benchmark::State &state)
{
    Rig rig;
    rig.l1->loadAccess(0x1000, 8, 0);
    Cycles t = 100;
    for (auto _ : state)
        benchmark::DoNotOptimize(rig.l1->loadAccess(0x1000, 8, ++t));
}
BENCHMARK(BM_RestL1LoadHit);

void
BM_RestL1ArmDisarmRoundTrip(benchmark::State &state)
{
    Rig rig;
    Cycles t = 0;
    for (auto _ : state) {
        rig.l1->armAccess(0x2000, ++t);
        rig.l1->disarmAccess(0x2000, ++t);
    }
}
BENCHMARK(BM_RestL1ArmDisarmRoundTrip);

void
BM_LsqCheckLoad(benchmark::State &state)
{
    cpu::Lsq lsq;
    for (std::uint64_t i = 0; i < 16; ++i)
        lsq.insert({i, 0x1000 + 64 * i, 8, i % 4 == 0, false,
                    ~Cycles(0)});
    for (auto _ : state)
        benchmark::DoNotOptimize(lsq.checkLoad(100, 0x1200, 8));
}
BENCHMARK(BM_LsqCheckLoad);

void
BM_TagePredictUpdate(benchmark::State &state)
{
    cpu::TagePredictor tage;
    std::uint64_t i = 0;
    for (auto _ : state) {
        ++i;
        benchmark::DoNotOptimize(
            tage.update(0x1000 + 4 * (i % 64), (i % 7) < 3));
    }
}
BENCHMARK(BM_TagePredictUpdate);

void
BM_RestEngineCheckAccess(benchmark::State &state)
{
    Xoshiro256ss rng(9);
    core::TokenConfigRegister tcr;
    tcr.writePrivileged(
        core::TokenValue::generate(rng, core::TokenWidth::Bytes64),
        core::RestMode::Secure);
    core::RestEngine engine(tcr);
    for (Addr a = 0; a < 1024; ++a)
        engine.arm(0x100000 + 64 * a);
    Addr probe = 0x100000;
    for (auto _ : state) {
        probe += 64;
        benchmark::DoNotOptimize(
            engine.checkAccess(probe & 0x1fffff, 8));
    }
}
BENCHMARK(BM_RestEngineCheckAccess);

/** Guest ops emitted per allocator malloc/free pair (the paper's
 *  allocator-cost comparison, reported as ops not wall time). */
template <typename MakeAlloc>
void
allocatorPairCost(benchmark::State &state, MakeAlloc make)
{
    for (auto _ : state) {
        state.PauseTiming();
        mem::GuestMemory memory;
        Xoshiro256ss rng(5);
        core::TokenConfigRegister tcr;
        tcr.writePrivileged(
            core::TokenValue::generate(rng, core::TokenWidth::Bytes64),
            core::RestMode::Secure);
        core::RestEngine engine(tcr);
        auto alloc = make(memory, engine);
        isa::OpQueue q;
        runtime::OpEmitter em(q, 0x600000, false);
        state.ResumeTiming();

        Addr p = alloc->malloc(128, em);
        alloc->free(p, em);
        state.counters["guest_ops_per_pair"] = double(q.size());
    }
}

void
BM_LibcAllocatorPair(benchmark::State &state)
{
    allocatorPairCost(state, [](mem::GuestMemory &m,
                                core::RestEngine &) {
        return std::make_unique<runtime::LibcAllocator>(m);
    });
}
BENCHMARK(BM_LibcAllocatorPair);

void
BM_AsanAllocatorPair(benchmark::State &state)
{
    allocatorPairCost(state, [](mem::GuestMemory &m,
                                core::RestEngine &) {
        return std::make_unique<runtime::AsanAllocator>(m, 1 << 20);
    });
}
BENCHMARK(BM_AsanAllocatorPair);

void
BM_RestAllocatorPair(benchmark::State &state)
{
    allocatorPairCost(state, [](mem::GuestMemory &m,
                                core::RestEngine &e) {
        return std::make_unique<runtime::RestAllocator>(m, e,
                                                        1 << 20);
    });
}
BENCHMARK(BM_RestAllocatorPair);

void
BM_SimulatorThroughput(benchmark::State &state)
{
    // End-to-end simulated ops per second of host time.
    auto p = workload::profileByName("hmmer");
    p.targetKiloInsts = 50;
    std::uint64_t ops = 0;
    for (auto _ : state) {
        auto m = sim::runBench(p, sim::ExpConfig::Plain);
        ops += m.ops;
    }
    state.counters["sim_ops_per_s"] = benchmark::Counter(
        double(ops), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulatorThroughput)->Unit(benchmark::kMillisecond);

void
BM_SweepRunnerThroughput(benchmark::State &state)
{
    // The parallel sweep engine end to end: simulated ops per second
    // of host time across a small matrix, at the given thread count.
    auto p = workload::profileByName("hmmer");
    p.targetKiloInsts = 50;
    std::vector<sim::SweepJob> jobs;
    for (int i = 0; i < 4; ++i) {
        auto pi = p;
        pi.seed = p.seed + 0x1000 * i;
        jobs.push_back(sim::makePresetJob(pi, sim::ExpConfig::Plain));
    }
    sim::SweepRunner runner(unsigned(state.range(0)));
    std::uint64_t ops = 0;
    for (auto _ : state) {
        for (const auto &r : runner.run(jobs))
            ops += r.measurement.ops;
    }
    state.counters["sim_ops_per_s"] = benchmark::Counter(
        double(ops), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SweepRunnerThroughput)
    ->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

} // namespace

BENCHMARK_MAIN();
