/**
 * @file
 * Reproduces paper Table II: prints the simulation configuration as
 * actually instantiated by the models (not just as declared), so any
 * drift between documentation and code is caught here.
 */

#include <iostream>

#include "cpu/cpu_config.hh"
#include "mem/cache_config.hh"

using namespace rest;

namespace
{

void
printCache(const char *label, const mem::CacheConfig &cfg)
{
    std::cout << "  " << label << ": " << cfg.sizeBytes / 1024
              << "kB, " << cfg.assoc << "-way, " << cfg.latency
              << " cycles, " << cfg.blockSize << "B blocks, LRU, "
              << cfg.numMshrs << " " << cfg.mshrTargets
              << "-entry MSHRs";
    if (cfg.writeBufferEntries)
        std::cout << ", " << cfg.writeBufferEntries
                  << "-entry write buffer";
    std::cout << ", no prefetch\n";
}

} // namespace

int
main()
{
    cpu::CpuConfig core;
    mem::DramConfig dram;

    std::cout << "===========================================\n"
              << "Table II: simulation base configuration\n"
              << "===========================================\n"
              << "Core (out-of-order):\n"
              << "  Frequency: 2 GHz (1 tick = 1 cycle)\n"
              << "  BPred: TAGE, 1+12 components ("
              << "8k-entry bimodal + 12x1k tagged ~ 31k total" << ")\n"
              << "  Fetch: " << core.fetchWidth << " wide, "
              << core.iqEntries << "-entry IQ\n"
              << "  Issue: " << core.issueWidth << " wide, "
              << core.robEntries << "-entry ROB\n"
              << "  Writeback: " << core.writebackWidth << " wide, "
              << core.lqEntries << "-entry LQ, " << core.sqEntries
              << "-entry SQ\n"
              << "  FUs: " << core.memPorts << " mem ports, "
              << core.aluUnits << " ALUs, " << core.fpUnits
              << " FP, " << core.mulDivUnits << " mul/div\n"
              << "  Mispredict penalty: " << core.mispredictPenalty
              << " cycles\n"
              << "Memory:\n";
    printCache("L1-I", mem::CacheConfig::l1i());
    printCache("L1-D", mem::CacheConfig::l1d());
    printCache("L2  ", mem::CacheConfig::l2());
    std::cout << "  DRAM: DDR3-like, " << dram.accessLatency
              << "-cycle access (~55 ns at 2 GHz), service period "
              << dram.servicePeriod << " cycles\n"
              << "REST additions (paper Fig. 4):\n"
              << "  1 token bit per granule per L1-D line\n"
              << "  fill-path token detector (comparator)\n"
              << "  token configuration register (privileged)\n";
    return 0;
}
