/**
 * @file
 * Reproduces paper Table II: prints the simulation configuration as
 * actually instantiated by the models (not just as declared), so any
 * drift between documentation and code is caught here.
 */

#include <fstream>
#include <iostream>

#include "bench_util.hh"
#include "cpu/cpu_config.hh"
#include "mem/cache_config.hh"
#include "util/json_writer.hh"

using namespace rest;

namespace
{

void
jsonCache(util::JsonWriter &w, const char *key,
          const mem::CacheConfig &cfg)
{
    w.key(key);
    w.beginObject();
    w.field("size_bytes", std::uint64_t(cfg.sizeBytes));
    w.field("assoc", cfg.assoc);
    w.field("latency_cycles", std::uint64_t(cfg.latency));
    w.field("block_bytes", cfg.blockSize);
    w.field("mshrs", cfg.numMshrs);
    w.field("mshr_targets", cfg.mshrTargets);
    w.field("write_buffer_entries", cfg.writeBufferEntries);
    w.endObject();
}

void
writeJson(const bench::Options &opt, const cpu::CpuConfig &core,
          const mem::DramConfig &dram)
{
    if (!opt.json)
        return;
    std::ofstream out(opt.jsonPath);
    if (!out) {
        rest_warn("cannot open results file ", opt.jsonPath);
        return;
    }
    util::JsonWriter w(out);
    w.beginObject();
    w.field("schema_version", std::uint64_t(1));
    w.field("figure", "tab2");
    w.key("core");
    w.beginObject();
    w.field("fetch_width", core.fetchWidth);
    w.field("issue_width", core.issueWidth);
    w.field("writeback_width", core.writebackWidth);
    w.field("iq_entries", core.iqEntries);
    w.field("rob_entries", core.robEntries);
    w.field("lq_entries", core.lqEntries);
    w.field("sq_entries", core.sqEntries);
    w.field("mem_ports", core.memPorts);
    w.field("alu_units", core.aluUnits);
    w.field("fp_units", core.fpUnits);
    w.field("muldiv_units", core.mulDivUnits);
    w.field("mispredict_penalty", std::uint64_t(core.mispredictPenalty));
    w.endObject();
    jsonCache(w, "l1i", mem::CacheConfig::l1i());
    jsonCache(w, "l1d", mem::CacheConfig::l1d());
    jsonCache(w, "l2", mem::CacheConfig::l2());
    w.key("dram");
    w.beginObject();
    w.field("access_latency", std::uint64_t(dram.accessLatency));
    w.field("service_period", std::uint64_t(dram.servicePeriod));
    w.endObject();
    w.endObject();
    out << "\n";
    std::cout << "\nresults: " << opt.jsonPath << "\n";
}

void
printCache(const char *label, const mem::CacheConfig &cfg)
{
    std::cout << "  " << label << ": " << cfg.sizeBytes / 1024
              << "kB, " << cfg.assoc << "-way, " << cfg.latency
              << " cycles, " << cfg.blockSize << "B blocks, LRU, "
              << cfg.numMshrs << " " << cfg.mshrTargets
              << "-entry MSHRs";
    if (cfg.writeBufferEntries)
        std::cout << ", " << cfg.writeBufferEntries
                  << "-entry write buffer";
    std::cout << ", no prefetch\n";
}

} // namespace

int
main(int argc, char **argv)
{
    auto opt = bench::parseOptions(argc, argv, "tab2");
    bench::installGlobalTrace(opt);
    bench::installGlobalTelemetry(opt);

    cpu::CpuConfig core;
    mem::DramConfig dram;

    std::cout << "===========================================\n"
              << "Table II: simulation base configuration\n"
              << "===========================================\n"
              << "Core (out-of-order):\n"
              << "  Frequency: 2 GHz (1 tick = 1 cycle)\n"
              << "  BPred: TAGE, 1+12 components ("
              << "8k-entry bimodal + 12x1k tagged ~ 31k total" << ")\n"
              << "  Fetch: " << core.fetchWidth << " wide, "
              << core.iqEntries << "-entry IQ\n"
              << "  Issue: " << core.issueWidth << " wide, "
              << core.robEntries << "-entry ROB\n"
              << "  Writeback: " << core.writebackWidth << " wide, "
              << core.lqEntries << "-entry LQ, " << core.sqEntries
              << "-entry SQ\n"
              << "  FUs: " << core.memPorts << " mem ports, "
              << core.aluUnits << " ALUs, " << core.fpUnits
              << " FP, " << core.mulDivUnits << " mul/div\n"
              << "  Mispredict penalty: " << core.mispredictPenalty
              << " cycles\n"
              << "Memory:\n";
    printCache("L1-I", mem::CacheConfig::l1i());
    printCache("L1-D", mem::CacheConfig::l1d());
    printCache("L2  ", mem::CacheConfig::l2());
    std::cout << "  DRAM: DDR3-like, " << dram.accessLatency
              << "-cycle access (~55 ns at 2 GHz), service period "
              << dram.servicePeriod << " cycles\n"
              << "REST additions (paper Fig. 4):\n"
              << "  1 token bit per granule per L1-D line\n"
              << "  fill-path token detector (comparator)\n"
              << "  token configuration register (privileged)\n";
    writeJson(opt, core, dram);
    return 0;
}
