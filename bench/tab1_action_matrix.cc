/**
 * @file
 * Reproduces paper Table I: drives every (action x LSQ / cache-hit /
 * cache-miss) cell of the REST semantics through the hardware models
 * and prints the observed behaviour next to the specified one.
 */

#include <fstream>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "core/rest_engine.hh"
#include "util/json_writer.hh"
#include "core/token.hh"
#include "cpu/lsq.hh"
#include "mem/cache.hh"
#include "mem/dram.hh"
#include "mem/rest_l1_cache.hh"
#include "util/logging.hh"
#include "util/random.hh"

using namespace rest;

namespace
{

struct Row
{
    std::string action;
    std::string column;
    std::string specified;
    std::string observed;
    bool pass;
};

std::vector<Row> rows;

void
record(const std::string &action, const std::string &column,
       const std::string &specified, const std::string &observed)
{
    rows.push_back({action, column, specified, observed,
                    specified == observed});
}

/** Fresh L1-D + memory harness per scenario. */
struct Rig
{
    Rig()
    {
        Xoshiro256ss rng(7);
        tcr.writePrivileged(
            core::TokenValue::generate(rng, core::TokenWidth::Bytes64),
            core::RestMode::Secure);
        dram = std::make_unique<mem::Dram>();
        l2 = std::make_unique<mem::Cache>(mem::CacheConfig::l2(),
                                          *dram);
        l1 = std::make_unique<mem::RestL1Cache>(mem::CacheConfig::l1d(),
                                                *l2, memory, tcr);
    }

    mem::GuestMemory memory;
    core::TokenConfigRegister tcr;
    std::unique_ptr<mem::Dram> dram;
    std::unique_ptr<mem::Cache> l2;
    std::unique_ptr<mem::RestL1Cache> l1;
};

std::string
outcome(const mem::RestAccess &acc)
{
    if (acc.violation == core::ViolationKind::None)
        return "ok";
    return core::violationKindName(acc.violation);
}

void
cacheCells()
{
    constexpr Addr a = 0x10040;

    { // Arm, hit
        Rig r;
        r.l1->loadAccess(a, 8, 0);
        auto acc = r.l1->armAccess(a, 100);
        record("arm", "cache-hit", "set token bit",
               acc.hit && !acc.faulted() && r.l1->tokenBitSet(a)
                   ? "set token bit" : outcome(acc));
    }
    { // Arm, miss
        Rig r;
        auto acc = r.l1->armAccess(a, 0);
        record("arm", "cache-miss", "fetch line, set token bit",
               !acc.hit && !acc.faulted() && r.l1->tokenBitSet(a)
                   ? "fetch line, set token bit" : outcome(acc));
    }
    { // Disarm, hit, armed
        Rig r;
        r.l1->armAccess(a, 0);
        auto acc = r.l1->disarmAccess(a, 100);
        bool zeroed = true;
        for (unsigned i = 0; i < 64; ++i)
            zeroed &= (r.memory.readByte(a + i) == 0);
        record("disarm(armed)", "cache-hit",
               "clear line, unset token bit",
               !acc.faulted() && !r.l1->tokenBitSet(a) && zeroed
                   ? "clear line, unset token bit" : outcome(acc));
    }
    { // Disarm, hit, unarmed
        Rig r;
        r.l1->loadAccess(a, 8, 0);
        auto acc = r.l1->disarmAccess(a, 100);
        record("disarm(unarmed)", "cache-hit", "raise exception",
               acc.violation == core::ViolationKind::DisarmUnarmed
                   ? "raise exception" : outcome(acc));
    }
    { // Disarm, miss (token in memory)
        Rig r;
        r.memory.writeBytes(a, r.tcr.token().bytes());
        auto acc = r.l1->disarmAccess(a, 0);
        record("disarm(armed)", "cache-miss",
               "fetch line, proceed as hit",
               !acc.hit && !acc.faulted() && !r.l1->tokenBitSet(a)
                   ? "fetch line, proceed as hit" : outcome(acc));
    }
    { // Load, hit, token set
        Rig r;
        r.l1->armAccess(a, 0);
        auto acc = r.l1->loadAccess(a, 8, 100);
        record("load(armed)", "cache-hit", "raise exception",
               acc.violation == core::ViolationKind::TokenAccess
                   ? "raise exception" : outcome(acc));
    }
    { // Load, hit, clean
        Rig r;
        r.l1->loadAccess(a, 8, 0);
        auto acc = r.l1->loadAccess(a, 8, 100);
        record("load(clean)", "cache-hit", "read data",
               acc.hit && !acc.faulted() ? "read data" : outcome(acc));
    }
    { // Load, miss on a token-carrying line
        Rig r;
        r.memory.writeBytes(a, r.tcr.token().bytes());
        auto acc = r.l1->loadAccess(a, 8, 0);
        record("load(armed)", "cache-miss",
               "fetch, set bit, proceed as hit (raise)",
               !acc.hit &&
                   acc.violation == core::ViolationKind::TokenAccess
                   ? "fetch, set bit, proceed as hit (raise)"
                   : outcome(acc));
    }
    { // Store, hit, token set
        Rig r;
        r.l1->armAccess(a, 0);
        auto acc = r.l1->storeAccess(a, 8, 100);
        record("store(armed)", "cache-hit", "raise exception",
               acc.violation == core::ViolationKind::TokenAccess
                   ? "raise exception" : outcome(acc));
    }
    { // Store, hit, clean
        Rig r;
        r.l1->loadAccess(a, 8, 0);
        auto acc = r.l1->storeAccess(a, 8, 100);
        record("store(clean)", "cache-hit", "write data",
               acc.hit && !acc.faulted() ? "write data" : outcome(acc));
    }
    { // Eviction of an armed line
        Rig r;
        r.l1->armAccess(a, 0);
        r.l1->flushAll();
        std::vector<std::uint8_t> buf(64);
        r.memory.readBytes(a, {buf.data(), buf.size()});
        record("eviction", "cache",
               "fill token value in outgoing packet",
               r.tcr.token().matches({buf.data(), buf.size()})
                   ? "fill token value in outgoing packet"
                   : "token value missing");
    }
}

void
lsqCells()
{
    { // Arm: create entry, tag as arm (never faults)
        cpu::Lsq lsq;
        auto v = lsq.checkInsert(0x1000, 64, true, false);
        lsq.insert({1, 0x1000, 64, true, false, 1000});
        record("arm", "LSQ", "create entry, tag as arm",
               v == core::ViolationKind::None && lsq.occupancy() == 1
                   ? "create entry, tag as arm"
                   : core::violationKindName(v));
    }
    { // Disarm over in-flight disarm: raise
        cpu::Lsq lsq;
        lsq.insert({1, 0x1000, 64, false, true, 1000});
        auto v = lsq.checkInsert(0x1000, 64, false, true);
        record("disarm", "LSQ",
               "raise if SQ has disarm for same location",
               v == core::ViolationKind::DisarmUnarmed
                   ? "raise if SQ has disarm for same location"
                   : core::violationKindName(v));
    }
    { // Load forwarding from an armed entry: raise
        cpu::Lsq lsq;
        lsq.insert({1, 0x1000, 64, true, false, 1000});
        auto chk = lsq.checkLoad(2, 0x1010, 8);
        record("load", "LSQ",
               "raise if value would forward from armed entry",
               chk.violation == core::ViolationKind::TokenForward
                   ? "raise if value would forward from armed entry"
                   : core::violationKindName(chk.violation));
    }
    { // Load forwarding from a plain store: as usual
        cpu::Lsq lsq;
        lsq.insert({1, 0x1000, 8, false, false, 1000});
        auto chk = lsq.checkLoad(2, 0x1000, 8);
        record("load", "LSQ(plain)", "forward as usual",
               chk.forwarded ? "forward as usual" : "no forward");
    }
    { // Store over in-flight arm: raise
        cpu::Lsq lsq;
        lsq.insert({1, 0x1000, 64, true, false, 1000});
        auto v = lsq.checkInsert(0x1008, 8, false, false);
        record("store", "LSQ",
               "raise if SQ has arm for same location",
               v == core::ViolationKind::TokenForward
                   ? "raise if SQ has arm for same location"
                   : core::violationKindName(v));
    }
}

/**
 * Run one probe group with fatals converted to exceptions
 * (DESIGN.md §10): a broken model records a FAIL row instead of
 * killing the harness before the table prints.
 */
void
guarded(const char *group, void (*fn)())
{
    util::ScopedFatalThrow fatal_throws;
    try {
        fn();
    } catch (const std::exception &e) {
        record(group, "harness", "probes complete",
               std::string("error: ") + e.what());
    }
}

/** Table I is not a sweep; its JSON is the cell matrix itself. */
void
writeJson(const bench::Options &opt, int failures)
{
    if (!opt.json)
        return;
    std::ofstream out(opt.jsonPath);
    if (!out) {
        rest_warn("cannot open results file ", opt.jsonPath);
        return;
    }
    util::JsonWriter w(out);
    w.beginObject();
    w.field("schema_version", std::uint64_t(1));
    w.field("figure", "tab1");
    w.key("cells");
    w.beginArray();
    for (const auto &row : rows) {
        w.beginObject();
        w.field("action", row.action);
        w.field("column", row.column);
        w.field("specified", row.specified);
        w.field("observed", row.observed);
        w.field("pass", row.pass);
        w.endObject();
    }
    w.endArray();
    w.field("failures", std::uint64_t(failures));
    w.endObject();
    out << "\n";
    std::cout << "\nresults: " << opt.jsonPath << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    auto opt = bench::parseOptions(argc, argv, "tab1");
    bench::installGlobalTrace(opt);
    bench::installGlobalTelemetry(opt);

    std::cout << "=================================================\n"
              << "Table I: REST action matrix, observed vs spec\n"
              << "=================================================\n";
    guarded("cache cells", cacheCells);
    guarded("lsq cells", lsqCells);

    int failures = 0;
    std::cout << std::left << std::setw(17) << "action"
              << std::setw(12) << "column" << std::setw(6) << "pass"
              << "behaviour\n"
              << std::string(78, '-') << "\n";
    for (const auto &row : rows) {
        std::cout << std::left << std::setw(17) << row.action
                  << std::setw(12) << row.column << std::setw(6)
                  << (row.pass ? "PASS" : "FAIL") << row.observed
                  << "\n";
        failures += !row.pass;
    }
    std::cout << std::string(78, '-') << "\n"
              << rows.size() - failures << "/" << rows.size()
              << " cells match Table I\n";
    writeJson(opt, failures);
    return failures ? 1 : 0;
}
