/**
 * @file
 * perf_report: guard the committed perf trajectory (DESIGN.md §12).
 *
 * Loads the "perf" block of a committed BENCH_*.json (the reference
 * simulator-throughput run, e.g. BENCH_fig7.json from PR 6) and
 * either:
 *   - checks it standalone (`--baseline FILE`): fast-functional
 *     speedup floor verdict (default ≥10×, the figure CI asserts);
 *   - compares another results file (`--current FILE`); or
 *   - runs a fresh probe (`--probe`) on the baseline's probe benchmark
 *     and compares, emitting a per-mode KIPS delta verdict table.
 *
 * Exit status: 0 = ok, 1 = regression / below floor, 2 = bad
 * arguments or unreadable baseline. CI runs the probe comparison as
 * an informational (non-blocking) job and the floor check blocking.
 */

#include <cstring>
#include <iostream>
#include <optional>
#include <string>

#include "bench_util.hh"
#include "sim/perf_report.hh"

using namespace rest;

namespace
{

[[noreturn]] void
usage(int status)
{
    (status ? std::cerr : std::cout)
        << "usage: perf_report --baseline FILE [--current FILE | "
           "--probe]\n"
           "                   [--threshold PCT] [--speedup-floor X]\n"
           "                   [--bench NAME] [--reps N]\n"
           "  --baseline FILE    committed BENCH_*.json with a "
           "\"perf\" block (required)\n"
           "  --current FILE     compare FILE's perf block against "
           "the baseline\n"
           "  --probe            run a fresh KIPS probe (detailed / "
           "fast-functional /\n"
           "                     sampled, Secure Full) and compare\n"
           "  --threshold PCT    flag a mode whose KIPS fell by more "
           "than PCT (default 20)\n"
           "  --speedup-floor X  minimum fast-functional speedup "
           "(default 10; 0 = off)\n"
           "  --bench NAME       probe benchmark (default: the "
           "baseline's)\n"
           "  --reps N           timed probe repetitions per mode "
           "(default 3)\n";
    std::exit(status);
}

/** The same KIPS probe fig7's --perf runs, on an arbitrary bench. */
sim::PerfRecord
probe(const std::string &bench_name, unsigned reps)
{
    auto p = workload::profileByName(bench_name);

    sim::ExecutionConfig fast;
    fast.fastFunctional = true;
    sim::ExecutionConfig sampled;
    sampled.sampling.intervalOps = 100000;

    sim::PerfRecord perf;
    perf.bench = bench_name;
    perf.kiloInsts = bench::kiloInsts();
    perf.kipsDetailed = bench::measureKips(
        p, sim::ExpConfig::RestSecureFull, {}, reps);
    perf.kipsFastFunctional = bench::measureKips(
        p, sim::ExpConfig::RestSecureFull, fast, reps);
    perf.kipsSampled = bench::measureKips(
        p, sim::ExpConfig::RestSecureFull, sampled, reps);
    if (perf.kipsDetailed > 0) {
        perf.speedupFastFunctional =
            perf.kipsFastFunctional / perf.kipsDetailed;
        perf.speedupSampled = perf.kipsSampled / perf.kipsDetailed;
    }
    return perf;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string baseline_path, current_path, bench_name;
    bool run_probe = false;
    double threshold = 20.0, floor = 10.0;
    unsigned reps = 3;

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::cerr << "perf_report: " << a
                          << " requires a value\n";
                usage(2);
            }
            return argv[++i];
        };
        if (a == "--baseline") {
            baseline_path = next();
        } else if (a == "--current") {
            current_path = next();
        } else if (a == "--probe") {
            run_probe = true;
        } else if (a == "--threshold") {
            threshold = std::strtod(next().c_str(), nullptr);
        } else if (a == "--speedup-floor") {
            floor = std::strtod(next().c_str(), nullptr);
        } else if (a == "--bench") {
            bench_name = next();
        } else if (a == "--reps") {
            reps = unsigned(std::strtoul(next().c_str(), nullptr, 10));
            if (reps == 0)
                reps = 1;
        } else if (a == "--help" || a == "-h") {
            usage(0);
        } else {
            std::cerr << "perf_report: unknown argument \"" << a
                      << "\"\n";
            usage(2);
        }
    }
    if (baseline_path.empty()) {
        std::cerr << "perf_report: --baseline is required\n";
        usage(2);
    }
    if (run_probe && !current_path.empty()) {
        std::cerr << "perf_report: --probe and --current are "
                     "mutually exclusive\n";
        usage(2);
    }

    auto baseline = sim::loadPerfBaseline(baseline_path);
    if (!baseline)
        return 2;
    std::cout << "perf report: baseline " << baseline->path << " ("
              << baseline->figure << ", bench " << baseline->perf.bench
              << ", " << baseline->perf.kiloInsts << " kinst)\n";

    sim::PerfReport report;
    if (run_probe) {
        if (bench_name.empty())
            bench_name = baseline->perf.bench;
        std::cout << "probing " << bench_name << " at "
                  << bench::kiloInsts() << " kinst, best of " << reps
                  << " reps per mode...\n";
        report = sim::comparePerf(baseline->perf,
                                  probe(bench_name, reps), threshold,
                                  floor);
    } else if (!current_path.empty()) {
        auto current = sim::loadPerfBaseline(current_path);
        if (!current)
            return 2;
        std::cout << "current:  " << current->path << " ("
                  << current->figure << ", bench "
                  << current->perf.bench << ", "
                  << current->perf.kiloInsts << " kinst)\n";
        report = sim::comparePerf(baseline->perf, current->perf,
                                  threshold, floor);
    } else {
        report = sim::checkBaseline(baseline->perf, floor);
    }

    printPerfReport(report, std::cout);
    return report.anyRegression() ? 1 : 0;
}
