/**
 * @file
 * Reproduces paper Figure 8: secure-mode runtime overheads with
 * 16-byte, 32-byte and 64-byte tokens, for full and heap-only
 * protection. The paper's conclusion: width choice does not move
 * performance significantly, so robustness can be chosen freely.
 */

#include "bench_util.hh"

using namespace rest;
using bench::measure;
using sim::ExpConfig;

int
main()
{
    std::cout << "==================================================\n"
              << "Figure 8: token width overheads, secure mode (%)\n"
              << "==================================================\n";

    struct Column
    {
        core::TokenWidth width;
        ExpConfig config;
        const char *name;
    };
    const std::vector<Column> columns = {
        {core::TokenWidth::Bytes16, ExpConfig::RestSecureFull,
         "16 Full"},
        {core::TokenWidth::Bytes32, ExpConfig::RestSecureFull,
         "32 Full"},
        {core::TokenWidth::Bytes64, ExpConfig::RestSecureFull,
         "64 Full"},
        {core::TokenWidth::Bytes16, ExpConfig::RestSecureHeap,
         "16 Heap"},
        {core::TokenWidth::Bytes32, ExpConfig::RestSecureHeap,
         "32 Heap"},
        {core::TokenWidth::Bytes64, ExpConfig::RestSecureHeap,
         "64 Heap"},
    };

    std::vector<std::string> headers;
    for (auto &c : columns)
        headers.push_back(c.name);
    bench::printHeader(headers);

    std::vector<Cycles> plain;
    std::vector<std::vector<Cycles>> scheme(columns.size());

    for (const auto &profile : workload::specSuite()) {
        Cycles base = measure(profile, ExpConfig::Plain);
        plain.push_back(base);
        std::vector<double> row;
        for (std::size_t c = 0; c < columns.size(); ++c) {
            Cycles cycles = measure(profile, columns[c].config,
                                    columns[c].width);
            scheme[c].push_back(cycles);
            row.push_back(sim::overheadPct(base, cycles));
        }
        bench::printRow(profile.name, row);
    }

    std::vector<double> wtd, geo;
    for (std::size_t c = 0; c < columns.size(); ++c) {
        wtd.push_back(sim::wtdAriMeanOverheadPct(plain, scheme[c]));
        geo.push_back(sim::geoMeanOverheadPct(plain, scheme[c]));
    }
    std::cout << std::string(12 + 16 * columns.size(), '-') << "\n";
    bench::printRow("WtdAriMean", wtd);
    bench::printRow("GeoMean", geo);

    std::cout << "\nPaper reference: no single token width makes a "
                 "significant performance difference.\n";
    return 0;
}
