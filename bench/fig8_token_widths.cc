/**
 * @file
 * Reproduces paper Figure 8: secure-mode runtime overheads with
 * 16-byte, 32-byte and 64-byte tokens, for full and heap-only
 * protection. The paper's conclusion: width choice does not move
 * performance significantly, so robustness can be chosen freely.
 *
 * Runs on the parallel sweep runner (--jobs N); results are written
 * to BENCH_fig8.json.
 */

#include "bench_util.hh"

using namespace rest;
using sim::ExpConfig;

int
main(int argc, char **argv)
{
    auto opt = bench::parseOptions(argc, argv, "fig8");
    bench::installGlobalTrace(opt);
    bench::installGlobalTelemetry(opt);

    std::cout << "==================================================\n"
              << "Figure 8: token width overheads, secure mode (%)\n"
              << "==================================================\n";

    const std::vector<bench::MatrixColumn> columns = {
        bench::presetColumn("16 Full", ExpConfig::RestSecureFull,
                            core::TokenWidth::Bytes16),
        bench::presetColumn("32 Full", ExpConfig::RestSecureFull,
                            core::TokenWidth::Bytes32),
        bench::presetColumn("64 Full", ExpConfig::RestSecureFull,
                            core::TokenWidth::Bytes64),
        bench::presetColumn("16 Heap", ExpConfig::RestSecureHeap,
                            core::TokenWidth::Bytes16),
        bench::presetColumn("32 Heap", ExpConfig::RestSecureHeap,
                            core::TokenWidth::Bytes32),
        bench::presetColumn("64 Heap", ExpConfig::RestSecureHeap,
                            core::TokenWidth::Bytes64),
    };

    auto mat = bench::runMatrix("token_widths", workload::specSuite(),
                                columns, opt);
    bench::printOverheadTable(mat);

    std::cout << "\nPaper reference: no single token width makes a "
                 "significant performance difference.\n";

    bench::writeResults(opt, "fig8", {std::move(mat.sweep)});
    return 0;
}
