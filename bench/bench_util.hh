/**
 * @file
 * Shared plumbing for the figure/table reproduction harnesses.
 *
 * Environment knobs:
 *   REST_BENCH_KILOINSTS  target dynamic kilo-instructions per run
 *                         (default 1000)
 *   REST_BENCH_SEEDS      generator seeds averaged per measurement
 *                         (default 2)
 */

#ifndef REST_BENCH_BENCH_UTIL_HH
#define REST_BENCH_BENCH_UTIL_HH

#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "sim/experiment.hh"
#include "workload/spec_profiles.hh"

namespace rest::bench
{

inline std::uint64_t
kiloInsts()
{
    if (const char *env = std::getenv("REST_BENCH_KILOINSTS"))
        return std::strtoull(env, nullptr, 10);
    return 1000;
}

inline unsigned
numSeeds()
{
    if (const char *env = std::getenv("REST_BENCH_SEEDS"))
        return static_cast<unsigned>(std::strtoul(env, nullptr, 10));
    return 2;
}

/**
 * Run one benchmark under one configuration, averaged over generator
 * seeds (the deterministic one-pass timing model has placement-
 * resonance noise that seed-averaging removes; see EXPERIMENTS.md).
 */
inline Cycles
measure(const workload::BenchProfile &base, sim::ExpConfig config,
        core::TokenWidth width = core::TokenWidth::Bytes64,
        bool inorder = false)
{
    double total = 0;
    unsigned seeds = numSeeds();
    for (unsigned s = 0; s < seeds; ++s) {
        workload::BenchProfile p = base;
        p.targetKiloInsts = kiloInsts();
        p.seed = base.seed + 0x1000 * s;
        total += static_cast<double>(
            sim::runBench(p, config, width, inorder).cycles);
    }
    return static_cast<Cycles>(total / seeds);
}

/** Print one row of a percentage table. */
inline void
printRow(const std::string &name, const std::vector<double> &values)
{
    std::cout << std::left << std::setw(12) << name << std::right;
    for (double v : values)
        std::cout << std::setw(16) << std::fixed
                  << std::setprecision(1) << v;
    std::cout << "\n";
}

inline void
printHeader(const std::vector<std::string> &columns)
{
    std::cout << std::left << std::setw(12) << "bench" << std::right;
    for (const auto &c : columns)
        std::cout << std::setw(16) << c;
    std::cout << "\n" << std::string(12 + 16 * columns.size(), '-')
              << "\n";
}

} // namespace rest::bench

#endif // REST_BENCH_BENCH_UTIL_HH
