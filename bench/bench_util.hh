/**
 * @file
 * Shared plumbing for the figure/table reproduction harnesses.
 *
 * Environment knobs (validated; bad values warn and fall back):
 *   REST_BENCH_KILOINSTS  target dynamic kilo-instructions per run
 *                         (default 1000, clamped to [1, 1000000])
 *   REST_BENCH_SEEDS      generator seeds averaged per measurement
 *                         (default 2, clamped to [1, 64])
 *   REST_BENCH_JOBS       default sweep worker threads (default:
 *                         hardware concurrency, clamped to [1, 256])
 *   REST_SWEEP_RETRIES    default --retries (default 1, clamp [0,16])
 *   REST_SWEEP_FAULT      deterministic fault injection (fallback for
 *                         --fault-inject): fail-once:IDX,
 *                         fail-always:IDX, fail-hard:IDX, slow:IDX:MS
 *
 * Command-line knobs (parseOptions(); every --flag also accepts the
 * --flag=value spelling):
 *   --jobs N / -j N       sweep worker threads for this invocation
 *   --json PATH           results file (default BENCH_<figure>.json)
 *   --no-json             disable the results file
 *   --detail              extra per-figure detail where supported
 *   --bench NAME          run only the named benchmark row
 *   --schemes CSV         registered protection schemes to measure
 *                         (tab3, multicore_scaling; default all)
 *   --cores N             largest core count of the multicore scaling
 *                         sweep (power-of-two counts up to N, plus N
 *                         itself when it is not a power of two)
 *   --workload NAME       multicore workload shape ("server": the
 *                         Zipf-popularity server mix)
 *   --fast-functional     retire ops functionally (no pipeline model);
 *                         detection is identical, cycles are nominal
 *   --sample-warmup N     detailed warmup ops per sampling period
 *                         (default 2000; needs --sample-interval)
 *   --sample-window N     detailed measured ops per period (default
 *                         10000)
 *   --sample-interval N   total ops per period; the rest fast-forwards
 *                         functionally (0 = sampling off, the default)
 *   --perf                run the harness's simulator-throughput probe
 *                         and record the "perf" block in the JSON
 *   --debug-flags CSV     enable debug flags (e.g. O3Pipe,Cache; the
 *                         REST_DEBUG_FLAGS env var is the fallback)
 *   --debug-start T       first tick debug flags are live
 *   --debug-end T         last tick debug flags are live
 *   --trace-out PATH      write Chrome trace-event JSON on exit
 *   --pipeview-out PATH   write O3PipeView instruction trace on exit
 *   --stats-every N       periodic stat snapshots every N cycles
 *                         (consumed by harnesses that run per-System
 *                         sinks, e.g. trace_demo)
 *   --dump-program B[:S]  print benchmark B's generated program after
 *                         instrumentation for scheme S (none, plain,
 *                         rest, or asan with optional +elide/+hoist/
 *                         +coalesce suffixes; "asan-elide" is the
 *                         legacy spelling of asan+elide; default
 *                         asan) and exit
 *
 * Fault-tolerant execution (DESIGN.md §10):
 *   --retries N           extra attempts for transiently failing jobs
 *                         (default REST_SWEEP_RETRIES, else 1)
 *   --backoff-ms N        exponential backoff base between attempts
 *                         (default 0 = none)
 *   --job-timeout-ms N    soft per-job timeout; an over-budget
 *                         attempt is discarded and retried (0 = off)
 *   --checkpoint STEM     persist completed jobs per sweep to
 *                         STEM.<sweep_name>; a killed run loses
 *                         nothing already measured
 *   --resume STEM         restore completed jobs from
 *                         STEM.<sweep_name> and run only the rest
 *   --fault-inject SPEC   deterministic fault injection (see
 *                         REST_SWEEP_FAULT above)
 *
 * Live telemetry (DESIGN.md §12; both off by default, and the default
 * run's output stays byte-identical when they are off):
 *   --serve PORT          embedded HTTP server with /metrics
 *                         (Prometheus text), /status (JSON) and
 *                         /healthz (0 = pick an ephemeral port; the
 *                         bound port is announced on stderr)
 *   --event-log FILE      append one JSON object per sweep lifecycle
 *                         event (JSONL, monotonic "seq" numbers)
 *
 * runMatrix() is the shared sweep driver: it expands a benchmark ×
 * column matrix (× seeds) into sim::SweepJobs, runs them on a
 * sim::SweepRunner, and aggregates exactly like the historical serial
 * loop (per-cell seed average in seed order), so tables are identical
 * at any --jobs value. Jobs that fail after retries become error
 * cells: tables print "error", the results JSON records
 * {"error", "attempts"}, and aggregate means are computed over the
 * surviving rows — the harness always exits 0 with every completed
 * measurement intact.
 */

#ifndef REST_BENCH_BENCH_UTIL_HH
#define REST_BENCH_BENCH_UTIL_HH

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <iomanip>
#include <iostream>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "analysis/verifier.hh"
#include "runtime/instrumentation.hh"
#include "runtime/protection_scheme.hh"
#include "sim/experiment.hh"
#include "sim/results.hh"
#include "sim/sweep.hh"
#include "sim/sweep_events.hh"
#include "sim/sweep_status.hh"
#include "util/http_server.hh"
#include "util/metrics.hh"
#include "util/trace.hh"
#include "workload/spec_profiles.hh"

namespace rest::bench
{

// ---------------------------------------------------------------------
// Environment knobs
// ---------------------------------------------------------------------

/**
 * Parse an unsigned environment variable defensively: empty,
 * non-numeric, negative or overflowing values warn on stderr and fall
 * back to `def`; out-of-range values warn and clamp to [lo, hi].
 */
inline std::uint64_t
parseEnvU64(const char *name, std::uint64_t def, std::uint64_t lo,
            std::uint64_t hi)
{
    const char *env = std::getenv(name);
    if (!env || !*env)
        return def;
    errno = 0;
    char *end = nullptr;
    unsigned long long v = std::strtoull(env, &end, 10);
    // strtoull silently wraps negative input; reject any '-' outright.
    if (end == env || *end != '\0' || errno == ERANGE ||
        std::strchr(env, '-')) {
        rest_warn(name, "=\"", env, "\" is not a valid unsigned "
                  "integer; using default ", def);
        return def;
    }
    if (v < lo || v > hi) {
        std::uint64_t clamped = v < lo ? lo : hi;
        rest_warn(name, "=", v, " out of range [", lo, ", ", hi,
                  "]; clamping to ", clamped);
        return clamped;
    }
    return v;
}

inline std::uint64_t
kiloInsts()
{
    static const std::uint64_t v =
        parseEnvU64("REST_BENCH_KILOINSTS", 1000, 1, 1000000);
    return v;
}

inline unsigned
numSeeds()
{
    static const unsigned v = unsigned(
        parseEnvU64("REST_BENCH_SEEDS", 2, 1, 64));
    return v;
}

/** Default --jobs: REST_BENCH_JOBS, else hardware concurrency. */
inline unsigned
defaultJobs()
{
    unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    static const unsigned v = unsigned(
        parseEnvU64("REST_BENCH_JOBS", hw, 1, 256));
    return v;
}

/** Default --retries: REST_SWEEP_RETRIES, else 1. */
inline unsigned
defaultRetries()
{
    static const unsigned v = unsigned(
        parseEnvU64("REST_SWEEP_RETRIES", 1, 0, 16));
    return v;
}

// ---------------------------------------------------------------------
// The harness-level telemetry hub (DESIGN.md §12)
// ---------------------------------------------------------------------

/**
 * Everything --serve / --event-log stand up, owned process-globally so
 * every sweep a harness runs publishes into the same registry and bus.
 * Declaration order is destruction order in reverse: the server (which
 * reads registry and tracker from its accept thread) and the event log
 * tear down before the things they observe.
 */
struct TelemetryHub
{
    telemetry::MetricRegistry registry;
    sim::SweepEventBus bus;
    sim::SweepStatusTracker tracker{&registry};
    std::unique_ptr<sim::SweepEventLog> eventLog;
    std::unique_ptr<telemetry::HttpServer> server;
};

/** Owns the global hub; empty until installGlobalTelemetry(). */
inline std::unique_ptr<TelemetryHub> &
globalTelemetryStorage()
{
    static std::unique_ptr<TelemetryHub> storage;
    return storage;
}

/** The installed hub, or nullptr when telemetry is off. */
inline TelemetryHub *
globalTelemetry()
{
    return globalTelemetryStorage().get();
}

// ---------------------------------------------------------------------
// Command line
// ---------------------------------------------------------------------

struct Options
{
    unsigned jobs = 1;
    bool json = true;
    std::string jsonPath;
    bool detail = false;
    /** --bench: run only this benchmark row ("" = all). */
    std::string benchFilter;
    /** --schemes: comma-separated registry ids to measure ("" = the
     *  harness default; tab3 runs every registered scheme). */
    std::string schemes;
    /** --cores: largest core count of the multicore scaling sweep
     *  (multicore_scaling runs power-of-two counts up to this, plus
     *  N itself when it is not a power of two). */
    unsigned cores = 8;
    /** --workload: multicore workload shape; "server" (the Zipf
     *  server mix) is the only registered shape. */
    std::string workload = "server";
    /** --perf: run the harness's simulator-throughput probe (where
     *  supported) and record the "perf" block in the results JSON. */
    bool perfProbe = false;
    /** Execution mode (--fast-functional / --sample-*); the default
     *  is all-detailed and leaves every sweep byte-identical. */
    sim::ExecutionConfig exec;

    // Fault-tolerant sweep execution (sim::SweepOptions).
    unsigned retries = 1;
    std::uint64_t backoffMs = 0;
    std::uint64_t jobTimeoutMs = 0;
    std::string checkpointStem;    ///< --checkpoint ("" = off)
    std::string resumeStem;        ///< --resume ("" = off)
    std::string faultSpec;         ///< --fault-inject ("" = env)

    // Live telemetry (DESIGN.md §12; both off by default).
    bool serve = false;            ///< --serve given
    std::uint16_t servePort = 0;   ///< 0 = ephemeral
    std::string eventLogPath;      ///< --event-log ("" = off)

    /**
     * Build the SweepOptions for one named sweep. Checkpoint files
     * are per sweep (STEM.<sweep_name>) because harnesses like
     * ablation run several sweeps per invocation.
     */
    sim::SweepOptions
    sweepOptions(const std::string &sweep_name) const
    {
        sim::SweepOptions s;
        s.retries = retries;
        s.backoffBaseMs = backoffMs;
        s.jobTimeoutMs = jobTimeoutMs;
        if (!checkpointStem.empty())
            s.checkpointPath = checkpointStem + "." + sweep_name;
        if (!resumeStem.empty())
            s.resumePath = resumeStem + "." + sweep_name;
        if (!faultSpec.empty())
            s.fault = sim::SweepFaultInjector::parse(faultSpec)
                          .value_or(sim::SweepFaultInjector{});
        else
            s.fault = sim::SweepFaultInjector::fromEnv();
        s.sweepName = sweep_name;
        // With no hub installed both stay nullptr and the runner's
        // behaviour (and output) is bit-for-bit the pre-telemetry one.
        if (TelemetryHub *hub = globalTelemetry()) {
            s.events = &hub->bus;
            s.registry = &hub->registry;
        }
        return s;
    }

    // Tracing (all off by default; see util/trace.hh).
    std::string debugFlags;        ///< CSV of flag names ("" = none)
    Tick debugStart = 0;
    Tick debugEnd = ~Tick(0);
    std::string traceOut;          ///< Chrome trace JSON path
    std::string pipeViewOut;       ///< O3PipeView path
    std::uint64_t statsEvery = 0;  ///< stat snapshot period (cycles)

    /** Build a TraceConfig from the parsed trace knobs. */
    trace::TraceConfig
    traceConfig() const
    {
        trace::TraceConfig cfg;
        if (!debugFlags.empty())
            trace::parseFlags(debugFlags, &cfg.flags);
        cfg.debugStart = debugStart;
        cfg.debugEnd = debugEnd;
        cfg.traceOutPath = traceOut;
        cfg.pipeViewPath = pipeViewOut;
        cfg.statsEvery = statsEvery;
        return cfg;
    }
};

[[noreturn]] inline void
usage(const std::string &figure, int status)
{
    (status ? std::cerr : std::cout)
        << "usage: " << figure << " [--jobs N] [--json PATH] "
        << "[--no-json] [--detail]\n"
        << "         [--bench NAME] [--fast-functional]\n"
        << "         [--sample-warmup N] [--sample-window N] "
        << "[--sample-interval N]\n"
        << "         [--retries N] [--backoff-ms N] "
        << "[--job-timeout-ms N]\n"
        << "         [--checkpoint STEM] [--resume STEM] "
        << "[--fault-inject SPEC]\n"
        << "         [--serve PORT] [--event-log FILE]\n"
        << "         [--debug-flags CSV] [--debug-start T] "
        << "[--debug-end T]\n"
        << "         [--trace-out PATH] [--pipeview-out PATH] "
        << "[--stats-every N]\n"
        << "         [--dump-program BENCH[:SCHEME]]\n"
        << "  --jobs N / -j N    sweep worker threads (default "
        << defaultJobs() << ")\n"
        << "  --json PATH        write results JSON (default BENCH_"
        << figure << ".json)\n"
        << "  --no-json          disable the results file\n"
        << "  --detail           extra per-figure detail\n"
        << "  --bench NAME       run only the named benchmark row\n"
        << "  --perf             run the simulator-throughput probe "
        << "and record the\n"
        << "                     \"perf\" block in the results JSON\n"
        << "  --fast-functional  functional retirement: identical "
        << "fault detection,\n"
        << "                     nominal cycles (CPI 1); for detection "
        << "work and CI,\n"
        << "                     never for quotable overheads\n"
        << "  --sample-warmup N  detailed warmup ops per sampling "
        << "period (default 2000)\n"
        << "  --sample-window N  detailed measured ops per period "
        << "(default 10000)\n"
        << "  --sample-interval N  total ops per period, remainder "
        << "fast-forwards\n"
        << "                     functionally (0 = sampling off)\n"
        << "  --retries N        extra attempts for transient job "
        << "failures (default " << defaultRetries() << ")\n"
        << "  --backoff-ms N     exponential backoff base between "
        << "attempts (default 0)\n"
        << "  --job-timeout-ms N soft per-job timeout; over-budget "
        << "attempts retry (0 = off)\n"
        << "  --checkpoint STEM  persist completed sweep jobs to "
        << "STEM.<sweep_name>\n"
        << "  --resume STEM      restore completed jobs from "
        << "STEM.<sweep_name>\n"
        << "  --fault-inject S   deterministic fault injection: "
        << "fail-once:IDX,\n"
        << "                     fail-always:IDX, fail-hard:IDX, "
        << "slow:IDX:MS\n"
        << "                     (REST_SWEEP_FAULT is the fallback)\n"
        << "  --serve PORT       expose /metrics, /status and /healthz "
        << "over HTTP\n"
        << "                     (0 = pick an ephemeral port, "
        << "announced on stderr)\n"
        << "  --event-log FILE   write sweep lifecycle events as JSON "
        << "lines\n"
        << "  --debug-flags CSV  enable debug flags (O3Pipe, Cache, "
        << "TokenDetect,\n"
        << "                     Alloc, Shadow, Sweep, or All)\n"
        << "  --debug-start T    first tick the flags are live\n"
        << "  --debug-end T      last tick the flags are live\n"
        << "  --trace-out PATH   write Chrome trace-event JSON\n"
        << "  --pipeview-out P   write an O3PipeView instruction "
        << "trace\n"
        << "  --stats-every N    periodic stat snapshots every N "
        << "cycles\n"
        << "  --schemes CSV      registered protection schemes to "
        << "measure (tab3,\n"
        << "                     multicore_scaling; any of plain,asan,"
        << "rest,mte,pauth;\n"
        << "                     default all)\n"
        << "  --cores N          largest core count of the multicore "
        << "scaling sweep\n"
        << "                     (power-of-two counts up to N, plus N "
        << "itself;\n"
        << "                     default 8)\n"
        << "  --workload NAME    multicore workload shape (server, "
        << "the default)\n"
        << "  --dump-program B[:S]  print benchmark B instrumented "
        << "for scheme S\n"
        << "                     (none, or a registered scheme: "
        << "plain, asan, rest,\n"
        << "                     mte, pauth, with optional +elide/"
        << "+hoist/+coalesce\n"
        << "                     suffixes on asan; default asan) "
        << "and exit\n";
    std::exit(status);
}

/**
 * The --dump-program action: generate benchmark `bench`, instrument it
 * for `scheme`, print the program listing plus the instrumentation
 * summary, and exit. "none" dumps the raw generator output with its
 * symbolic buf#N references unresolved.
 */
[[noreturn]] inline void
dumpProgram(const std::string &figure, const std::string &spec)
{
    std::string bench = spec, scheme = "asan";
    if (std::size_t colon = spec.find(':'); colon != std::string::npos) {
        bench = spec.substr(0, colon);
        scheme = spec.substr(colon + 1);
    }

    const std::vector<workload::BenchProfile> suite =
        workload::specSuite();
    const workload::BenchProfile *profile = nullptr;
    for (const auto &p : suite)
        if (p.name == bench)
            profile = &p;
    if (!profile) {
        std::cerr << figure << ": unknown benchmark \"" << bench
                  << "\"; available:";
        for (const auto &p : suite)
            std::cerr << " " << p.name;
        std::cerr << "\n";
        std::exit(1);
    }

    // "none" dumps the raw generator output; every other spec resolves
    // through the ProtectionScheme registry ("asan-elide" remains the
    // legacy spelling of "asan+elide").
    runtime::SchemeConfig cfg;
    const bool apply = scheme != "none";
    if (apply) {
        std::string err;
        if (!runtime::parseSchemeSpec(scheme, cfg, err)) {
            std::cerr << figure << ": " << err << " (want none, or a "
                      << "registered scheme:";
            for (const runtime::ProtectionScheme *ps :
                 runtime::allSchemes())
                std::cerr << " " << ps->id();
            std::cerr << "; asan takes optional +elide/+hoist/"
                      << "+coalesce suffixes, e.g. asan+elide+hoist)\n";
            std::exit(1);
        }
    }

    isa::Program prog = workload::generate(*profile);
    if (!apply) {
        std::cout << "; " << bench << ", generator output (symbolic "
                  << "stack buffers)\n\n" << prog.toString();
        std::exit(0);
    }
    runtime::InstrumentationSummary sum =
        runtime::applyScheme(prog, cfg);
    // Re-run the full post-instrumentation verifier on the optimized
    // output in every build type (applyScheme only re-verifies in
    // debug builds); CI asserts on this line for optimized schemes.
    analysis::VerifyOptions vo;
    vo.expectAsanChecks = cfg.asanAccessChecks;
    vo.expectArming = cfg.restStackArming;
    auto diags = analysis::verify(prog, vo);
    if (!diags.empty()) {
        std::cerr << figure << ": instrumented " << bench
                  << " failed verification under " << cfg.name()
                  << ":\n" << analysis::formatDiagnostics(diags)
                  << "\n";
        std::exit(1);
    }
    std::cout << "; " << bench << ", scheme " << cfg.name() << "\n"
              << "; verifier: ok (0 diagnostics)\n"
              << "; checks inserted " << sum.accessChecksInserted
              << ", elided " << sum.accessChecksElided
              << ", hoisted " << sum.accessChecksHoisted
              << ", coalesced " << sum.accessChecksCoalesced
              << ", arms " << sum.armsInserted
              << ", disarms " << sum.disarmsInserted << "\n"
              << "; poison stores " << sum.stackPoisonStores
              << ", pad-zero stores " << sum.padZeroStores
              << ", frame bytes " << sum.frameBytesTotal << "\n\n"
              << prog.toString();
    std::exit(0);
}

/**
 * Parse the shared harness flags; unknown flags are fatal. Both
 * "--flag value" and "--flag=value" are accepted. When any trace knob
 * is live (or REST_DEBUG_FLAGS is set) a process-global trace sink is
 * installed; see installGlobalTrace().
 */
inline Options
parseOptions(int argc, char **argv, const std::string &figure)
{
    Options opt;
    opt.jobs = defaultJobs();
    opt.retries = defaultRetries();
    opt.jsonPath = "BENCH_" + figure + ".json";

    // Expand "--flag=value" into "--flag" "value" so one loop handles
    // both spellings.
    std::vector<std::string> args;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        std::size_t eq;
        if (a.size() > 2 && a.compare(0, 2, "--") == 0 &&
            (eq = a.find('=')) != std::string::npos) {
            args.push_back(a.substr(0, eq));
            args.push_back(a.substr(eq + 1));
        } else {
            args.push_back(std::move(a));
        }
    }

    auto strArg = [&](std::size_t &i,
                      const std::string &flag) -> std::string {
        if (i + 1 >= args.size()) {
            std::cerr << figure << ": " << flag
                      << " requires a value\n";
            usage(figure, 1);
        }
        return args[++i];
    };
    auto u64Arg = [&](std::size_t &i, const std::string &flag,
                      std::uint64_t lo,
                      std::uint64_t hi) -> std::uint64_t {
        std::string s = strArg(i, flag);
        errno = 0;
        char *end = nullptr;
        unsigned long long v = std::strtoull(s.c_str(), &end, 10);
        if (end == s.c_str() || *end != '\0' || errno == ERANGE ||
            s.find('-') != std::string::npos || v < lo || v > hi) {
            std::cerr << figure << ": bad " << flag << " value \"" << s
                      << "\" (want " << lo << ".." << hi << ")\n";
            usage(figure, 1);
        }
        return v;
    };

    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &a = args[i];
        if (a == "--jobs" || a == "-j") {
            opt.jobs = unsigned(u64Arg(i, a, 1, 256));
        } else if (a == "--json") {
            opt.jsonPath = strArg(i, a);
            opt.json = true;
        } else if (a == "--no-json") {
            opt.json = false;
        } else if (a == "--detail") {
            opt.detail = true;
        } else if (a == "--bench") {
            opt.benchFilter = strArg(i, a);
        } else if (a == "--schemes") {
            opt.schemes = strArg(i, a);
        } else if (a == "--cores") {
            opt.cores = unsigned(u64Arg(i, a, 1, 64));
        } else if (a == "--workload") {
            opt.workload = strArg(i, a);
            if (opt.workload != "server") {
                std::cerr << figure << ": unknown --workload \""
                          << opt.workload << "\" (want server)\n";
                usage(figure, 1);
            }
        } else if (a == "--perf") {
            opt.perfProbe = true;
        } else if (a == "--fast-functional") {
            opt.exec.fastFunctional = true;
        } else if (a == "--sample-warmup") {
            opt.exec.sampling.warmupOps =
                u64Arg(i, a, 0, ~std::uint64_t(0));
        } else if (a == "--sample-window") {
            opt.exec.sampling.windowOps =
                u64Arg(i, a, 1, ~std::uint64_t(0));
        } else if (a == "--sample-interval") {
            opt.exec.sampling.intervalOps =
                u64Arg(i, a, 0, ~std::uint64_t(0));
        } else if (a == "--retries") {
            opt.retries = unsigned(u64Arg(i, a, 0, 16));
        } else if (a == "--backoff-ms") {
            opt.backoffMs = u64Arg(i, a, 0, 60000);
        } else if (a == "--job-timeout-ms") {
            opt.jobTimeoutMs = u64Arg(i, a, 0, ~std::uint64_t(0));
        } else if (a == "--checkpoint") {
            opt.checkpointStem = strArg(i, a);
        } else if (a == "--resume") {
            opt.resumeStem = strArg(i, a);
        } else if (a == "--fault-inject") {
            opt.faultSpec = strArg(i, a);
            if (!sim::SweepFaultInjector::parse(opt.faultSpec)) {
                std::cerr << figure << ": bad --fault-inject spec \""
                          << opt.faultSpec << "\"\n";
                usage(figure, 1);
            }
        } else if (a == "--serve") {
            opt.serve = true;
            opt.servePort = std::uint16_t(u64Arg(i, a, 0, 65535));
        } else if (a == "--event-log") {
            opt.eventLogPath = strArg(i, a);
        } else if (a == "--debug-flags") {
            opt.debugFlags = strArg(i, a);
            trace::FlagMask mask = 0;
            if (!trace::parseFlags(opt.debugFlags, &mask)) {
                std::cerr << figure << ": unknown debug flag in \""
                          << opt.debugFlags << "\"\n";
                usage(figure, 1);
            }
        } else if (a == "--debug-start") {
            opt.debugStart = u64Arg(i, a, 0, ~std::uint64_t(0));
        } else if (a == "--debug-end") {
            opt.debugEnd = u64Arg(i, a, 0, ~std::uint64_t(0));
        } else if (a == "--trace-out") {
            opt.traceOut = strArg(i, a);
        } else if (a == "--pipeview-out") {
            opt.pipeViewOut = strArg(i, a);
        } else if (a == "--stats-every") {
            opt.statsEvery = u64Arg(i, a, 1, ~std::uint64_t(0));
        } else if (a == "--dump-program") {
            dumpProgram(figure, strArg(i, a));
        } else if (a == "--help" || a == "-h") {
            usage(figure, 0);
        } else {
            std::cerr << figure << ": unknown argument \"" << a
                      << "\"\n";
            usage(figure, 1);
        }
    }
    if (opt.exec.fastFunctional && opt.exec.sampling.active()) {
        std::cerr << figure << ": --fast-functional and "
                  << "--sample-interval are mutually exclusive\n";
        usage(figure, 1);
    }
    if (!opt.exec.sampling.valid()) {
        std::cerr << figure << ": bad sampling config: need "
                  << "--sample-warmup + --sample-window <= "
                  << "--sample-interval\n";
        usage(figure, 1);
    }
    return opt;
}

// ---------------------------------------------------------------------
// The harness-level (process-global) trace sink
// ---------------------------------------------------------------------

/** Owns the global sink so an atexit hook can flush its outputs. */
inline std::unique_ptr<trace::TraceSink> &
globalTraceStorage()
{
    static std::unique_ptr<trace::TraceSink> storage;
    return storage;
}

/** atexit hook: write the global sink's configured output files. */
inline void
writeGlobalTraceFiles()
{
    auto &storage = globalTraceStorage();
    if (!storage)
        return;
    const trace::TraceConfig &cfg = storage->config();
    if (!cfg.traceOutPath.empty())
        storage->writeChromeTraceFile(cfg.traceOutPath);
    if (!cfg.pipeViewPath.empty())
        storage->writePipeViewFile(cfg.pipeViewPath);
}

/**
 * Install the process-global trace sink from the parsed options (with
 * REST_DEBUG_FLAGS as the flag fallback). All sweep workers share it;
 * its outputs are written at exit. Returns nullptr — and installs
 * nothing — when no trace knob is live, keeping the default run
 * byte-identical to an uninstrumented build.
 */
inline trace::TraceSink *
installGlobalTrace(const Options &opt)
{
    trace::TraceConfig cfg = opt.traceConfig();
    if (cfg.flags == 0)
        cfg.flags = trace::TraceConfig::fromEnv().flags;
    if (!cfg.active())
        return nullptr;
    auto &storage = globalTraceStorage();
    storage = std::make_unique<trace::TraceSink>(cfg);
    trace::setGlobalSink(storage.get());
    std::atexit(writeGlobalTraceFiles);
    return storage.get();
}

/**
 * Stand up the process-global telemetry hub from the parsed options:
 * the status tracker (always, feeding /status and the registry), the
 * --event-log JSONL sink, and the --serve HTTP endpoints. Returns
 * nullptr — and installs nothing — when both knobs are off, keeping
 * the default run byte-identical. Call once, before the first sweep.
 */
inline TelemetryHub *
installGlobalTelemetry(const Options &opt)
{
    if (!opt.serve && opt.eventLogPath.empty())
        return nullptr;
    auto &storage = globalTelemetryStorage();
    rest_assert(!storage, "telemetry hub installed twice");
    storage = std::make_unique<TelemetryHub>();
    TelemetryHub *hub = storage.get();

    hub->bus.subscribe([hub](const sim::SweepEvent &e) {
        hub->tracker.onEvent(e);
    });
    if (!opt.eventLogPath.empty()) {
        hub->eventLog =
            std::make_unique<sim::SweepEventLog>(opt.eventLogPath);
        if (hub->eventLog->ok()) {
            hub->bus.subscribe([hub](const sim::SweepEvent &e) {
                hub->eventLog->append(e);
            });
        } else {
            hub->eventLog.reset();
        }
    }
    if (opt.serve) {
        hub->server = std::make_unique<telemetry::HttpServer>();
        hub->server->route(
            "/metrics", [hub](const telemetry::HttpRequest &) {
                telemetry::HttpResponse r;
                r.contentType =
                    "text/plain; version=0.0.4; charset=utf-8";
                r.body = hub->registry.prometheusText();
                return r;
            });
        hub->server->route(
            "/status", [hub](const telemetry::HttpRequest &) {
                telemetry::HttpResponse r;
                r.contentType = "application/json";
                r.body = hub->tracker.statusJson();
                return r;
            });
        hub->server->route(
            "/healthz", [](const telemetry::HttpRequest &) {
                telemetry::HttpResponse r;
                r.body = "ok\n";
                return r;
            });
        if (hub->server->start(opt.servePort)) {
            // stderr, like warn(): stdout stays the harness's table.
            std::cerr << "telemetry: serving /metrics /status /healthz "
                      << "on port " << hub->server->port() << "\n";
        } else {
            hub->server.reset();
        }
    }
    return hub;
}

// ---------------------------------------------------------------------
// The shared sweep driver
// ---------------------------------------------------------------------

/** One column of a benchmark × configuration matrix. */
struct MatrixColumn
{
    std::string name;
    sim::ExpConfig config = sim::ExpConfig::Plain;
    core::TokenWidth width = core::TokenWidth::Bytes64;
    bool inorder = false;
    bool custom = false;
    sim::SystemConfig customConfig;
};

inline MatrixColumn
presetColumn(std::string name, sim::ExpConfig config,
             core::TokenWidth width = core::TokenWidth::Bytes64,
             bool inorder = false)
{
    MatrixColumn c;
    c.name = std::move(name);
    c.config = config;
    c.width = width;
    c.inorder = inorder;
    return c;
}

inline MatrixColumn
customColumn(std::string name, const sim::SystemConfig &cfg)
{
    MatrixColumn c;
    c.name = std::move(name);
    c.custom = true;
    c.customConfig = cfg;
    return c;
}

/** Aggregated matrix: table-shaped views plus the full JSON record. */
struct MatrixResult
{
    std::vector<std::string> rowNames;
    std::vector<std::string> colNames;
    /** Plain baseline per row (empty when run without baseline). */
    std::vector<Cycles> baseline;
    /** False where the baseline cell failed (indexed like baseline). */
    std::vector<bool> baselineOk;
    /** Seed-averaged cycles, indexed [column][row]. */
    std::vector<std::vector<Cycles>> cells;
    /** False where the cell failed, indexed [column][row]. Failed
     *  cells carry cycles == 0; consult ok before using them. */
    std::vector<std::vector<bool>> cellOk;

    /** Did every cell (and baseline) succeed? */
    bool
    allOk() const
    {
        for (bool ok : baselineOk)
            if (!ok)
                return false;
        for (const auto &col : cellOk)
            for (bool ok : col)
                if (!ok)
                    return false;
        return true;
    }

    /** Overhead % for table printing; NaN when either side failed
     *  (printRow renders non-finite values as "error"). */
    double
    overheadAt(std::size_t col, std::size_t row) const
    {
        if (!baselineOk[row] || !cellOk[col][row])
            return std::numeric_limits<double>::quiet_NaN();
        return sim::overheadPct(baseline[row], cells[col][row]);
    }

    /** Full per-cell record for the results file. */
    sim::SweepResults sweep;
};

/**
 * Run a benchmark × column matrix, seeds expanded per cell, on a
 * SweepRunner with opt.jobs threads and opt's retry/timeout/
 * checkpoint policy. When `with_baseline` is set a Plain column is
 * run first and the sweep's wtd-ari/geo mean overheads are computed
 * against it (over the rows whose cells all succeeded).
 */
inline MatrixResult
runMatrix(const std::string &sweep_name,
          const std::vector<workload::BenchProfile> &rows,
          const std::vector<MatrixColumn> &cols, const Options &opt,
          bool with_baseline = true)
{
    const unsigned seeds = numSeeds();
    const std::uint64_t ki = kiloInsts();

    // --bench narrows the matrix to one row (CI perf-smoke runs one
    // benchmark instead of the whole suite).
    std::vector<workload::BenchProfile> rows_run;
    if (opt.benchFilter.empty()) {
        rows_run = rows;
    } else {
        for (const auto &r : rows)
            if (r.name == opt.benchFilter)
                rows_run.push_back(r);
        if (rows_run.empty()) {
            std::cerr << "sweep " << sweep_name << ": --bench \""
                      << opt.benchFilter
                      << "\" matches no row; available:";
            for (const auto &r : rows)
                std::cerr << " " << r.name;
            std::cerr << "\n";
            std::exit(1);
        }
    }

    // All columns as run, baseline first.
    std::vector<MatrixColumn> all_cols;
    if (with_baseline)
        all_cols.push_back(presetColumn("Plain", sim::ExpConfig::Plain,
                                        core::TokenWidth::Bytes64,
                                        cols.empty()
                                            ? false
                                            : cols.front().inorder));
    all_cols.insert(all_cols.end(), cols.begin(), cols.end());

    std::vector<sim::SweepJob> jobs_list;
    jobs_list.reserve(rows_run.size() * all_cols.size() * seeds);
    for (const auto &row : rows_run) {
        for (const auto &col : all_cols) {
            for (unsigned s = 0; s < seeds; ++s) {
                workload::BenchProfile p = row;
                p.targetKiloInsts = ki;
                p.seed = row.seed + 0x1000 * s;
                sim::SweepJob job =
                    col.custom
                        ? sim::makeCustomJob(std::move(p),
                                             col.customConfig, col.name)
                        : sim::makePresetJob(std::move(p), col.config,
                                             col.width, col.inorder);
                job.label = col.name;
                job.exec = opt.exec;
                jobs_list.push_back(std::move(job));
            }
        }
    }

    const std::vector<sim::JobResult> results =
        sim::SweepRunner(opt.jobs, opt.sweepOptions(sweep_name))
            .run(jobs_list);

    MatrixResult out;
    out.sweep.name = sweep_name;
    for (const auto &col : all_cols) {
        out.sweep.columns.push_back(col.name);
        if (!(with_baseline && &col == &all_cols.front()))
            out.colNames.push_back(col.name);
    }
    out.cells.resize(out.colNames.size());
    out.cellOk.resize(out.colNames.size());

    std::size_t idx = 0;
    for (const auto &row : rows_run) {
        out.rowNames.push_back(row.name);
        out.sweep.rows.push_back(row.name);
        for (std::size_t c = 0; c < all_cols.size(); ++c) {
            sim::SweepCell cell;
            cell.bench = row.name;
            cell.column = all_cols[c].name;
            // Seed-average in seed order, exactly like the historical
            // serial measure() loop, so tables match bit-for-bit.
            double total_cycles = 0, total_ops = 0;
            for (unsigned s = 0; s < seeds; ++s) {
                const sim::JobResult &jr = results[idx++];
                cell.attempts += jr.attempts;
                if (!jr.ok) {
                    // The cell fails as a whole; keep the first
                    // error and keep consuming the remaining seeds'
                    // attempt counts.
                    if (cell.ok) {
                        cell.ok = false;
                        cell.error = jr.error;
                    }
                    continue;
                }
                const sim::Measurement &m = jr.measurement;
                cell.execMode = m.execMode;
                cell.samplingErrorPct = std::max(
                    cell.samplingErrorPct, m.samplingErrorPct);
                total_cycles += double(m.cycles);
                total_ops += double(m.ops);
                cell.seedCycles.push_back(m.cycles);
                for (const auto &[name, v] : m.scalars)
                    cell.scalars[name] += v;
                // Per-interval deltas of the first seed's run; empty
                // (and thus absent from the JSON) unless the column's
                // config enabled periodic snapshots.
                if (s == 0)
                    cell.statSeries = m.statSeries;
            }
            if (cell.ok) {
                cell.cycles = Cycles(total_cycles / seeds);
                cell.ops = std::uint64_t(total_ops / seeds);
            } else {
                // Zero the measurement fields so nothing downstream
                // mistakes a failed cell for an implausibly fast run.
                cell.cycles = 0;
                cell.ops = 0;
                cell.seedCycles.clear();
                cell.scalars.clear();
                cell.statSeries.clear();
            }

            bool is_baseline = with_baseline && c == 0;
            if (is_baseline) {
                out.baseline.push_back(cell.cycles);
                out.baselineOk.push_back(cell.ok);
                if (cell.ok)
                    out.sweep.baselineCycles[row.name] = cell.cycles;
            } else {
                std::size_t ci = with_baseline ? c - 1 : c;
                out.cells[ci].push_back(cell.cycles);
                out.cellOk[ci].push_back(cell.ok);
            }
            out.sweep.cells.push_back(std::move(cell));
        }
    }

    if (with_baseline) {
        for (std::size_t c = 0; c < out.colNames.size(); ++c) {
            // Means over the rows whose baseline and cell both
            // succeeded; NaN — "error" in tables, null in JSON —
            // when no row survived.
            std::vector<Cycles> base, cyc;
            for (std::size_t r = 0; r < out.rowNames.size(); ++r) {
                if (!out.baselineOk[r] || !out.cellOk[c][r])
                    continue;
                base.push_back(out.baseline[r]);
                cyc.push_back(out.cells[c][r]);
            }
            const double nan = std::numeric_limits<double>::quiet_NaN();
            out.sweep.wtdAriMeanPct[out.colNames[c]] =
                base.empty() ? nan
                             : sim::wtdAriMeanOverheadPct(base, cyc);
            out.sweep.geoMeanPct[out.colNames[c]] =
                base.empty() ? nan : sim::geoMeanOverheadPct(base, cyc);
        }
    }
    return out;
}

/**
 * Run one benchmark under one configuration, averaged over generator
 * seeds (the deterministic one-pass timing model has placement-
 * resonance noise that seed-averaging removes; see EXPERIMENTS.md).
 * Serial reference path; the sweep tests compare runMatrix() output
 * against per-job runBench() calls shaped like this.
 */
inline Cycles
measure(const workload::BenchProfile &base, sim::ExpConfig config,
        core::TokenWidth width = core::TokenWidth::Bytes64,
        bool inorder = false)
{
    double total = 0;
    unsigned seeds = numSeeds();
    for (unsigned s = 0; s < seeds; ++s) {
        workload::BenchProfile p = base;
        p.targetKiloInsts = kiloInsts();
        p.seed = base.seed + 0x1000 * s;
        total += static_cast<double>(
            sim::runBench(p, config, width, inorder).cycles);
    }
    return static_cast<Cycles>(total / seeds);
}

/**
 * Measure simulator throughput — simulated kilo-instructions retired
 * per second of host wall-clock (KIPS) — for one benchmark under one
 * preset and execution mode. One untimed warmup run (spins the CPU
 * back up to full frequency and faults in the host pages), then best
 * of 'reps' identical timed runs (standard timing methodology: the
 * fastest is the least-contended sample on a shared host), no seed
 * averaging: this measures the simulator, not the simulated machine.
 */
inline double
measureKips(const workload::BenchProfile &base, sim::ExpConfig config,
            const sim::ExecutionConfig &exec = {}, unsigned reps = 3)
{
    workload::BenchProfile p = base;
    p.targetKiloInsts = kiloInsts();
    double best = 0.0;
    sim::runBench(p, config, core::TokenWidth::Bytes64, false, exec);
    for (unsigned r = 0; r < reps; ++r) {
        sim::Measurement m = sim::runBench(
            p, config, core::TokenWidth::Bytes64, false, exec);
        // Simulation time only (workload generation and System
        // construction excluded) — the fast modes finish in tens of
        // milliseconds, where setup would otherwise dominate.
        if (m.simWallSeconds > 0)
            best = std::max(best,
                            double(m.ops) / 1000.0 / m.simWallSeconds);
    }
    return best;
}

// ---------------------------------------------------------------------
// Output
// ---------------------------------------------------------------------

/** Print one row of a percentage table. Non-finite entries are the
 *  error-cell sentinel and render as "error". */
inline void
printRow(const std::string &name, const std::vector<double> &values)
{
    std::cout << std::left << std::setw(12) << name << std::right;
    for (double v : values) {
        if (std::isfinite(v))
            std::cout << std::setw(16) << std::fixed
                      << std::setprecision(1) << v;
        else
            std::cout << std::setw(16) << "error";
    }
    std::cout << "\n";
}

inline void
printHeader(const std::vector<std::string> &columns)
{
    std::cout << std::left << std::setw(12) << "bench" << std::right;
    for (const auto &c : columns)
        std::cout << std::setw(16) << c;
    std::cout << "\n" << std::string(12 + 16 * columns.size(), '-')
              << "\n";
}

/** The fig7/fig8 table shape: per-row overhead %, then the means. */
inline void
printOverheadTable(const MatrixResult &mat)
{
    printHeader(mat.colNames);
    for (std::size_t r = 0; r < mat.rowNames.size(); ++r) {
        std::vector<double> row;
        for (std::size_t c = 0; c < mat.colNames.size(); ++c)
            row.push_back(mat.overheadAt(c, r));
        printRow(mat.rowNames[r], row);
    }
    std::cout << std::string(12 + 16 * mat.colNames.size(), '-')
              << "\n";
    std::vector<double> wtd, geo;
    for (const auto &name : mat.colNames) {
        wtd.push_back(mat.sweep.wtdAriMeanPct.at(name));
        geo.push_back(mat.sweep.geoMeanPct.at(name));
    }
    printRow("WtdAriMean", wtd);
    printRow("GeoMean", geo);
}

/** Assemble and write BENCH_<figure>.json if enabled. A valid `perf`
 *  record (from measureKips() probes) serialises as the optional
 *  "perf" block. */
inline void
writeResults(const Options &opt, const std::string &figure,
             std::vector<sim::SweepResults> sweeps,
             const sim::PerfRecord &perf = {})
{
    if (!opt.json)
        return;
    sim::ResultsFile f;
    f.figure = figure;
    f.kiloInsts = kiloInsts();
    f.seedsPerCell = numSeeds();
    f.jobs = opt.jobs;
    f.perf = perf;
    f.sweeps = std::move(sweeps);
    if (sim::writeJsonFile(f, opt.jsonPath))
        std::cout << "\nresults: " << opt.jsonPath << "\n";
}

} // namespace rest::bench

#endif // REST_BENCH_BENCH_UTIL_HH
