/**
 * @file
 * Reproduces paper Table III: comparison of hardware memory-safety
 * proposals. The rows for prior work are encoded from the paper; the
 * REST row is *probed empirically* against this implementation:
 *   - spatial protection: linear (sweeps caught, targeted jumps over
 *     redzones missed),
 *   - temporal protection: until reallocation (UAF caught while
 *     quarantined, missed after recycling),
 *   - no shadow space,
 *   - composability: uninstrumented "library" code still protected,
 *   - hardware cost: 1 metadata bit per L1-D granule + comparator.
 */

#include <fstream>
#include <iomanip>
#include <iostream>

#include "bench_util.hh"
#include "common_probe.hh"
#include "util/json_writer.hh"
#include "util/logging.hh"

using namespace rest;

namespace
{

struct PriorRow
{
    const char *name;
    const char *spatial;
    const char *temporal;
    const char *shadow;
    const char *composable;
    const char *overhead;
};

const PriorRow priorWork[] = {
    {"Hardbound", "Complete", "None", "yes", "no", "Low"},
    {"SafeProc", "Complete", "Complete", "no", "no", "Low"},
    {"Watchdog", "Complete", "Complete", "yes", "no", "Moderate"},
    {"WatchdogLite", "Complete", "Complete", "yes", "no", "Moderate"},
    {"Intel MPX", "Complete", "None", "no", "no*", "High"},
    {"HDFI", "Linear", "None", "yes", "yes", "Negligible"},
    {"SPARC ADI", "Linear", "Until realloc", "no", "yes",
     "Negligible"},
    {"CHERI", "Complete", "Complete", "no", "no", "Moderate"},
    {"iWatcher", "N/A", "N/A", "no", "yes", "High"},
    {"Unlim. watchpts", "N/A", "N/A", "no", "yes", "High"},
    {"SafeMem", "Linear", "None", "no", "yes", "High"},
    {"Memtracker", "Linear", "Until realloc", "yes", "yes", "Low"},
    {"ARM PAC", "Targeted", "None", "no", "yes", "Negligible"},
};

/** The empirically probed REST row, machine-readable. */
void
writeJson(const bench::Options &opt, const probe::Results &rest_row,
          const std::string &probe_error)
{
    if (!opt.json)
        return;
    std::ofstream out(opt.jsonPath);
    if (!out) {
        rest_warn("cannot open results file ", opt.jsonPath);
        return;
    }
    util::JsonWriter w(out);
    w.beginObject();
    w.field("schema_version", std::uint64_t(1));
    w.field("figure", "tab3");
    w.key("rest_row");
    w.beginObject();
    if (!probe_error.empty())
        w.field("error", probe_error);
    w.field("spatial_linear", rest_row.spatialLinear);
    w.field("temporal_until_realloc", rest_row.temporalUntilRealloc);
    w.field("uses_shadow_space", rest_row.usesShadowSpace);
    w.field("composable", rest_row.composable);
    w.field("linear_caught", rest_row.linearCaught);
    w.field("targeted_missed", rest_row.targetedMissed);
    w.field("uaf_caught", rest_row.uafCaught);
    w.field("uaf_after_recycle_missed", rest_row.uafAfterRecycleMissed);
    w.field("all_consistent", rest_row.allConsistent());
    w.endObject();
    w.endObject();
    out << "\n";
    std::cout << "\nresults: " << opt.jsonPath << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    auto opt = bench::parseOptions(argc, argv, "tab3");
    bench::installGlobalTrace(opt);
    bench::installGlobalTelemetry(opt);

    std::cout << "====================================================\n"
              << "Table III: hardware technique comparison\n"
              << "(REST row derived empirically from this build)\n"
              << "====================================================\n";

    // ---- Empirical probes for the REST row ----
    // With fatals converted to exceptions (DESIGN.md §10), a broken
    // model still prints the full table — the REST row just reads
    // BROKEN — and the JSON carries the error.
    probe::Results rest_row;
    std::string probe_error;
    {
        util::ScopedFatalThrow fatal_throws;
        try {
            rest_row = probe::probeRest();
        } catch (const std::exception &e) {
            probe_error = e.what();
            rest_row = probe::Results{};
        }
    }

    auto print = [](const char *name, const char *spatial,
                    const char *temporal, const char *shadow,
                    const char *composable, const char *overhead) {
        std::cout << std::left << std::setw(17) << name
                  << std::setw(11) << spatial << std::setw(15)
                  << temporal << std::setw(8) << shadow
                  << std::setw(12) << composable << overhead << "\n";
    };

    print("Proposal", "Spatial", "Temporal", "Shadow", "Composable",
          "HW cost");
    std::cout << std::string(75, '-') << "\n";
    for (const auto &row : priorWork)
        print(row.name, row.spatial, row.temporal, row.shadow,
              row.composable, row.overhead);
    std::cout << std::string(75, '-') << "\n";
    print("REST (this impl)",
          rest_row.spatialLinear ? "Linear" : "BROKEN",
          rest_row.temporalUntilRealloc ? "Until realloc" : "BROKEN",
          rest_row.usesShadowSpace ? "yes" : "no",
          rest_row.composable ? "yes" : "no",
          "1 bit/L1-D granule + comparator");

    std::cout << "\nProbe details:\n"
              << "  linear overflow caught:        "
              << rest_row.linearCaught << "\n"
              << "  targeted jump over redzone:    "
              << (rest_row.targetedMissed ? "missed (as specified)"
                                          : "caught") << "\n"
              << "  UAF while quarantined caught:  "
              << rest_row.uafCaught << "\n"
              << "  UAF after recycling missed:    "
              << (rest_row.uafAfterRecycleMissed
                      ? "missed (as specified)" : "caught") << "\n"
              << "  uninstrumented-code detection: "
              << rest_row.composable << "\n";
    if (!probe_error.empty())
        std::cout << "\nprobe error: " << probe_error << "\n";
    writeJson(opt, rest_row, probe_error);
    return rest_row.allConsistent() ? 0 : 1;
}
