/**
 * @file
 * Reproduces paper Table III: comparison of hardware memory-safety
 * proposals. The rows for prior work are encoded from the paper; the
 * rows for every *registered* ProtectionScheme (plain, asan, rest,
 * mte, pauth) are measured live against this implementation:
 *
 *   - each scheme runs the shared attack-scenario matrix
 *     (sim/scheme_matrix.hh) and its verdicts are classified into the
 *     paper's spatial/temporal protection classes,
 *   - measured verdicts are checked against the scheme's declared
 *     DetectionProfile (a conformance failure fails the run),
 *   - seed-dependent declarations (MTE's 4-bit tag-reuse escape) are
 *     witnessed across a seed sweep: both outcomes must occur,
 *   - runtime overhead is probed on a small SPEC-like profile against
 *     the plain baseline,
 *   - hardware cost comes from each scheme's HardwareCost descriptor.
 *
 * The legacy REST probe row (bench/common_probe.hh) is retained
 * unchanged: its JSON block is byte-compatible with schema v1 and its
 * printed row renders BROKEN in *every* column when the probe faults
 * (a broken probe must not print default-constructed measurements).
 */

#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <vector>

#include "bench_util.hh"
#include "common_probe.hh"
#include "sim/experiment.hh"
#include "sim/scheme_matrix.hh"
#include "util/json_writer.hh"
#include "util/logging.hh"

using namespace rest;

namespace
{

struct PriorRow
{
    const char *name;
    const char *spatial;
    const char *temporal;
    const char *shadow;
    const char *composable;
    const char *overhead;
};

const PriorRow priorWork[] = {
    {"Hardbound", "Complete", "None", "yes", "no", "Low"},
    {"SafeProc", "Complete", "Complete", "no", "no", "Low"},
    {"Watchdog", "Complete", "Complete", "yes", "no", "Moderate"},
    {"WatchdogLite", "Complete", "Complete", "yes", "no", "Moderate"},
    {"Intel MPX", "Complete", "None", "no", "no*", "High"},
    {"HDFI", "Linear", "None", "yes", "yes", "Negligible"},
    {"SPARC ADI", "Linear", "Until realloc", "no", "yes",
     "Negligible"},
    {"CHERI", "Complete", "Complete", "no", "no", "Moderate"},
    {"iWatcher", "N/A", "N/A", "no", "yes", "High"},
    {"Unlim. watchpts", "N/A", "N/A", "no", "yes", "High"},
    {"SafeMem", "Linear", "None", "no", "yes", "High"},
    {"Memtracker", "Linear", "Until realloc", "yes", "yes", "Low"},
    {"ARM PAC", "Targeted", "None", "no", "yes", "Negligible"},
};

/** Token/tag seed for the single-run scenario matrix. */
constexpr std::uint64_t matrixSeed = 0xc0ffee;
/** Seed sweep witnessing both outcomes of SeedDependent entries. */
constexpr std::uint64_t sweepFirstSeed = 1;
constexpr unsigned sweepNumSeeds = 32;

/** Everything measured about one registered scheme. */
struct SchemeRow
{
    const runtime::ProtectionScheme *scheme = nullptr;
    sim::SchemeVerdicts verdicts;
    runtime::DetectionProfile declared;
    runtime::HardwareCost cost;
    bool conforms = false;
    std::string spatialClass;
    std::string temporalClass;
    double overheadPct = 0.0;
    bool overheadOk = false;
    /** Set when the declared profile has SeedDependent entries. */
    bool swept = false;
    sim::SeedSweepResult sweep;
};

/** Does this profile declare any seed-dependent scenario? */
bool
hasSeedDependent(const runtime::DetectionProfile &p)
{
    for (const sim::ScenarioInfo &s : sim::attackScenarios())
        if (p.*(s.declared) == runtime::Expect::SeedDependent)
            return true;
    return false;
}

/**
 * Resolve --schemes (comma-separated registry ids, suffixes allowed
 * on asan) into scheme pointers; empty means every registered scheme.
 * The paired SchemeConfig carries any optimizer suffixes.
 */
std::vector<std::pair<const runtime::ProtectionScheme *,
                      runtime::SchemeConfig>>
resolveSchemes(const std::string &csv)
{
    std::vector<std::pair<const runtime::ProtectionScheme *,
                          runtime::SchemeConfig>> out;
    if (csv.empty()) {
        for (const runtime::ProtectionScheme *ps :
             runtime::allSchemes())
            out.emplace_back(ps, ps->baseConfig());
        return out;
    }
    std::stringstream ss(csv);
    std::string item;
    while (std::getline(ss, item, ',')) {
        if (item.empty())
            continue;
        runtime::SchemeConfig cfg;
        std::string err;
        if (!runtime::parseSchemeSpec(item, cfg, err)) {
            std::cerr << "tab3: --schemes: " << err << "; registered:";
            for (const runtime::ProtectionScheme *ps :
                 runtime::allSchemes())
                std::cerr << " " << ps->id();
            std::cerr << "\n";
            std::exit(1);
        }
        out.emplace_back(&runtime::schemeForConfig(cfg), cfg);
    }
    return out;
}

/**
 * Overhead probe: one small detailed run of a SPEC-like profile per
 * scheme against a shared plain baseline. Deliberately small (the
 * point of this bench is the detection matrix, not fig3's sweep) but
 * long enough to amortise the live-ring warm-up allocations, whose
 * per-granule tag stores would otherwise dominate the mte row.
 */
constexpr std::uint64_t overheadKiloInsts = 400;

workload::BenchProfile
overheadProfile()
{
    workload::BenchProfile p = workload::specSuite().front();
    p.targetKiloInsts = overheadKiloInsts;
    return p;
}

sim::Measurement
overheadRun(const runtime::SchemeConfig &scheme)
{
    sim::SystemConfig cfg;
    cfg.scheme = scheme;
    cfg.tokenSeed = matrixSeed;
    return sim::runCustom(overheadProfile(), cfg, scheme.name());
}

void
writeJson(const bench::Options &opt, const probe::Results &rest_row,
          const std::string &probe_error,
          const std::vector<SchemeRow> &rows, bool all_conform)
{
    if (!opt.json)
        return;
    std::ofstream out(opt.jsonPath);
    if (!out) {
        rest_warn("cannot open results file ", opt.jsonPath);
        return;
    }
    util::JsonWriter w(out);
    w.beginObject();
    w.field("schema_version", std::uint64_t(2));
    w.field("figure", "tab3");
    // The legacy empirically probed REST row: field set and order are
    // byte-identical to schema v1.
    w.key("rest_row");
    w.beginObject();
    if (!probe_error.empty())
        w.field("error", probe_error);
    w.field("spatial_linear", rest_row.spatialLinear);
    w.field("temporal_until_realloc", rest_row.temporalUntilRealloc);
    w.field("uses_shadow_space", rest_row.usesShadowSpace);
    w.field("composable", rest_row.composable);
    w.field("linear_caught", rest_row.linearCaught);
    w.field("targeted_missed", rest_row.targetedMissed);
    w.field("uaf_caught", rest_row.uafCaught);
    w.field("uaf_after_recycle_missed", rest_row.uafAfterRecycleMissed);
    w.field("all_consistent", rest_row.allConsistent());
    w.endObject();

    // Schema v2: the measured per-scheme matrix.
    w.key("schemes");
    w.beginArray();
    for (const SchemeRow &row : rows) {
        w.beginObject();
        w.field("id", row.verdicts.scheme);
        w.field("description", row.scheme->description());
        w.field("spatial_class", row.spatialClass);
        w.field("temporal_class", row.temporalClass);
        w.field("conforms", row.conforms);
        w.key("scenarios");
        w.beginObject();
        for (const sim::ScenarioInfo &s : sim::attackScenarios()) {
            w.key(s.key);
            w.beginObject();
            w.field("caught", row.verdicts.*(s.measured));
            w.field("declared",
                    runtime::expectName(row.declared.*(s.declared)));
            w.endObject();
        }
        w.endObject();
        if (row.overheadOk)
            w.field("overhead_pct", row.overheadPct);
        w.key("hardware_cost");
        w.beginObject();
        w.field("summary", row.cost.summary);
        w.field("metadata_bits_per_data_byte",
                row.cost.metadataBitsPerDataByte);
        w.field("overhead_class", row.cost.overheadClass);
        w.field("uses_shadow_space", row.cost.usesShadowSpace);
        w.endObject();
        if (row.swept) {
            w.key("uaf_recycled_seed_sweep");
            w.beginObject();
            w.field("seeds", std::uint64_t(sweepNumSeeds));
            w.field("caught", std::uint64_t(row.sweep.caught));
            w.field("missed", std::uint64_t(row.sweep.missed));
            w.field("both_witnessed", row.sweep.bothWitnessed());
            if (row.sweep.caught)
                w.field("first_caught_seed", row.sweep.firstCaughtSeed);
            if (row.sweep.missed)
                w.field("first_missed_seed", row.sweep.firstMissedSeed);
            w.endObject();
        }
        w.endObject();
    }
    w.endArray();

    w.key("prior_work");
    w.beginArray();
    for (const PriorRow &row : priorWork) {
        w.beginObject();
        w.field("name", row.name);
        w.field("spatial", row.spatial);
        w.field("temporal", row.temporal);
        w.field("uses_shadow_space", std::string(row.shadow) != "no");
        w.field("composable", row.composable);
        w.field("hw_cost", row.overhead);
        w.endObject();
    }
    w.endArray();
    w.field("all_schemes_conform", all_conform);
    w.endObject();
    out << "\n";
    std::cout << "\nresults: " << opt.jsonPath << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    auto opt = bench::parseOptions(argc, argv, "tab3");
    bench::installGlobalTrace(opt);
    bench::installGlobalTelemetry(opt);

    std::cout << "====================================================\n"
              << "Table III: hardware technique comparison\n"
              << "(scheme rows measured live from this build)\n"
              << "====================================================\n";

    // ---- Legacy empirical probes for the REST row ----
    // With fatals converted to exceptions (DESIGN.md §10), a broken
    // model still prints the full table — the REST row just reads
    // BROKEN in every column — and the JSON carries the error.
    probe::Results rest_row;
    std::string probe_error;
    {
        util::ScopedFatalThrow fatal_throws;
        try {
            rest_row = probe::probeRest();
        } catch (const std::exception &e) {
            probe_error = e.what();
            rest_row = probe::Results{};
        }
    }

    // ---- Measured matrix over the registered schemes ----
    const auto selected = resolveSchemes(opt.schemes);
    const sim::Measurement plain_base =
        overheadRun(runtime::SchemeConfig::plain());

    std::vector<SchemeRow> rows;
    bool all_conform = true;
    for (const auto &[scheme, cfg] : selected) {
        SchemeRow row;
        row.scheme = scheme;
        row.verdicts = sim::measureScheme(cfg, matrixSeed);
        row.declared = scheme->declaredProfile();
        row.cost = scheme->hardwareCost();
        row.conforms = sim::matchesProfile(row.verdicts, row.declared);
        row.spatialClass = sim::spatialClassOf(row.verdicts);
        row.temporalClass = sim::temporalClassOf(row.verdicts);
        if (hasSeedDependent(row.declared)) {
            row.swept = true;
            row.sweep = sim::sweepUafRecycled(cfg, sweepFirstSeed,
                                              sweepNumSeeds);
            // A SeedDependent declaration is only honest when the
            // sweep actually exhibits both outcomes.
            row.conforms &= row.sweep.bothWitnessed();
        }
        {
            const sim::Measurement m = overheadRun(cfg);
            row.overheadOk = plain_base.cycles > 0 && m.cycles > 0;
            if (row.overheadOk)
                row.overheadPct =
                    sim::overheadPct(plain_base.cycles, m.cycles);
        }
        all_conform &= row.conforms;
        rows.push_back(std::move(row));
    }

    auto print = [](const std::string &name, const std::string &spatial,
                    const std::string &temporal,
                    const std::string &shadow,
                    const std::string &composable,
                    const std::string &overhead) {
        std::cout << std::left << std::setw(17) << name
                  << std::setw(11) << spatial << std::setw(15)
                  << temporal << std::setw(8) << shadow
                  << std::setw(12) << composable << overhead << "\n";
    };

    print("Proposal", "Spatial", "Temporal", "Shadow", "Composable",
          "HW cost");
    std::cout << std::string(75, '-') << "\n";
    for (const auto &row : priorWork)
        print(row.name, row.spatial, row.temporal, row.shadow,
              row.composable, row.overhead);
    std::cout << std::string(75, '-') << "\n";

    // Measured rows: one per selected scheme, classes derived from
    // the scenario verdicts, shadow/composability from the scheme's
    // cost descriptor and uninstrumented-library verdict.
    for (const SchemeRow &row : rows) {
        std::ostringstream cost;
        cost << row.cost.overheadClass;
        if (row.overheadOk)
            cost << " (" << std::fixed << std::setprecision(1)
                 << row.overheadPct << "% here)";
        print(row.verdicts.scheme + " (measured)", row.spatialClass,
              row.temporalClass,
              row.cost.usesShadowSpace ? "yes" : "no",
              row.verdicts.uninstrumentedLibrary ? "yes" : "no",
              cost.str());
    }
    std::cout << std::string(75, '-') << "\n"
              << "overhead probed on " << overheadProfile().name << ", "
              << overheadKiloInsts << " kiloinsts, 1 seed; negative "
              << "values mean the scheme's\nallocator packs the heap "
              << "tighter than libc's size classes (16B granule\n"
              << "rounding vs power-of-two), outweighing its check "
              << "cost on this small probe\n"
              << std::string(75, '-') << "\n";

    const sim::RestRowText rest_text = sim::formatRestRow(
        {rest_row.spatialLinear, rest_row.temporalUntilRealloc,
         rest_row.usesShadowSpace, rest_row.composable},
        probe_error);
    print("REST (probe)", rest_text.spatial, rest_text.temporal,
          rest_text.shadow, rest_text.composable,
          "1 bit/L1-D granule + comparator");

    // ---- Per-scheme scenario detail ----
    std::cout << "\nScenario verdicts (C = caught, . = missed; "
              << "* = declared seed-dependent):\n";
    std::cout << std::left << std::setw(26) << "  scenario";
    for (const SchemeRow &row : rows)
        std::cout << std::setw(9) << row.verdicts.scheme;
    std::cout << "\n";
    for (const sim::ScenarioInfo &s : sim::attackScenarios()) {
        std::cout << "  " << std::left << std::setw(24) << s.key;
        for (const SchemeRow &row : rows) {
            std::string cell = row.verdicts.*(s.measured) ? "C" : ".";
            if (row.declared.*(s.declared) ==
                runtime::Expect::SeedDependent)
                cell += "*";
            std::cout << std::setw(9) << cell;
        }
        std::cout << "\n";
    }
    for (const SchemeRow &row : rows) {
        if (!row.swept)
            continue;
        std::cout << "\n" << row.verdicts.scheme
                  << " uaf_recycled seed sweep (" << sweepNumSeeds
                  << " seeds): caught " << row.sweep.caught
                  << ", missed " << row.sweep.missed
                  << (row.sweep.bothWitnessed()
                          ? " — both outcomes witnessed"
                          : " — ONLY ONE OUTCOME SEEN")
                  << "\n";
    }
    for (const SchemeRow &row : rows)
        if (!row.conforms)
            std::cout << "\nCONFORMANCE FAILURE: "
                      << row.verdicts.scheme << " measured verdicts "
                      << "do not match its declared profile\n";

    if (probe_error.empty()) {
        std::cout << "\nREST probe details:\n"
                  << "  linear overflow caught:        "
                  << rest_row.linearCaught << "\n"
                  << "  targeted jump over redzone:    "
                  << (rest_row.targetedMissed ? "missed (as specified)"
                                              : "caught") << "\n"
                  << "  UAF while quarantined caught:  "
                  << rest_row.uafCaught << "\n"
                  << "  UAF after recycling missed:    "
                  << (rest_row.uafAfterRecycleMissed
                          ? "missed (as specified)" : "caught") << "\n"
                  << "  uninstrumented-code detection: "
                  << rest_row.composable << "\n";
    } else {
        std::cout << "\nprobe error: " << probe_error << "\n";
    }
    writeJson(opt, rest_row, probe_error, rows, all_conform);
    return rest_row.allConsistent() && probe_error.empty() &&
                   all_conform
               ? 0
               : 1;
}
