/**
 * @file
 * Ablation studies of the design choices DESIGN.md calls out:
 *   1. LSQ matching logic vs. serializing arm/disarm (paper §III-B:
 *      "this option, while simple to implement, can introduce
 *      significant performance penalties"),
 *   2. debug-mode delayed store commit (the entire secure/debug gap),
 *   3. critical-word-first off (precise-exception support cost),
 *   4. quarantine budget sweep (temporal-protection window vs cost),
 *   5. redundant shadow-check elision (ASan with the statically
 *      provable duplicate checks deleted, analysis/elide_checks.hh),
 *   6. loop-check optimization (invariant checks hoisted to loop
 *      preheaders and adjacent windows coalesced, on top of elision;
 *      analysis/hoist_checks.hh, analysis/coalesce_checks.hh),
 *   7. protection-scheme backends (every registered ProtectionScheme
 *      — asan, rest, mte, pauth — on the same rows, overhead against
 *      the shared plain baseline; runtime/protection_scheme.hh).
 *
 * Each ablation is a small matrix on the parallel sweep runner
 * (--jobs N); all seven sweeps land in BENCH_ablation.json.
 */

#include "bench_util.hh"
#include "runtime/protection_scheme.hh"
#include "sim/system.hh"

using namespace rest;
using sim::ExpConfig;

namespace
{

std::vector<workload::BenchProfile>
profiles(std::initializer_list<const char *> names)
{
    std::vector<workload::BenchProfile> out;
    for (const char *name : names)
        out.push_back(workload::profileByName(name));
    return out;
}

/** Print a matrix (run with a Plain baseline) as overhead %. */
void
printOverheads(const bench::MatrixResult &mat)
{
    bench::printHeader(mat.colNames);
    for (std::size_t r = 0; r < mat.rowNames.size(); ++r) {
        std::vector<double> row;
        for (std::size_t c = 0; c < mat.colNames.size(); ++c)
            row.push_back(mat.overheadAt(c, r));
        bench::printRow(mat.rowNames[r], row);
    }
}

bench::MatrixResult
lsqSerializationAblation(const bench::Options &opt)
{
    std::cout << "\n--- Ablation 1: LSQ matching logic vs "
                 "serialization ---\n";
    auto matching = sim::makeSystemConfig(ExpConfig::RestSecureFull);
    auto serialized = matching;
    serialized.cpuConfig.serializeRestOps = true;
    auto mat = bench::runMatrix(
        "lsq_serialization", profiles({"xalancbmk", "gcc", "gobmk"}),
        {bench::customColumn("matching(%)", matching),
         bench::customColumn("serialized(%)", serialized)},
        opt);
    printOverheads(mat);
    std::cout << "Expected: serialization costs strictly more, "
                 "especially with frequent arm/disarm.\n";
    return mat;
}

bench::MatrixResult
storeCommitAblation(const bench::Options &opt)
{
    std::cout << "\n--- Ablation 2: delayed store commit in "
                 "isolation ---\n";
    // Secure mode with only the delayed-store-commit change.
    auto delayed = sim::makeSystemConfig(ExpConfig::RestSecureFull);
    delayed.cpuConfig.delayStoreCommit = true;
    auto mat = bench::runMatrix(
        "store_commit", profiles({"xalancbmk", "soplex", "lbm"}),
        {bench::presetColumn("secure(%)", ExpConfig::RestSecureFull),
         bench::customColumn("sec+delay(%)", delayed),
         bench::presetColumn("debug(%)", ExpConfig::RestDebugFull)},
        opt);
    printOverheads(mat);
    std::cout << "Expected: delayed store commit accounts for nearly "
                 "the whole secure->debug gap.\n";
    return mat;
}

bench::MatrixResult
quarantineSweep(const bench::Options &opt)
{
    std::cout << "\n--- Ablation 3: quarantine budget sweep "
                 "(xalancbmk, secure heap) ---\n";
    std::vector<bench::MatrixColumn> columns;
    for (auto [budget, name] :
         {std::pair{64ul << 10, "64KiB(%)"},
          std::pair{256ul << 10, "256KiB(%)"},
          std::pair{1ul << 20, "1MiB(%)"},
          std::pair{4ul << 20, "4MiB(%)"}}) {
        auto cfg = sim::makeSystemConfig(ExpConfig::RestSecureHeap);
        cfg.scheme.quarantineBudget = budget;
        columns.push_back(bench::customColumn(name, cfg));
    }
    auto mat = bench::runMatrix("quarantine_budget",
                                profiles({"xalancbmk"}), columns,
                                opt);
    printOverheads(mat);
    std::cout << "Larger budgets widen the UAF detection window; the "
                 "cost moves with drain/recycle behaviour.\n";
    return mat;
}

bench::MatrixResult
criticalWordFirstAblation(const bench::Options &opt)
{
    std::cout << "\n--- Ablation 4: critical-word-first off "
                 "(precise-exception support, SIII-B) ---\n";
    auto off = sim::makeSystemConfig(ExpConfig::RestSecureFull);
    off.cpuConfig.criticalWordFirst = false;
    auto mat = bench::runMatrix(
        "critical_word_first", profiles({"astar", "libquantum"}),
        {bench::presetColumn("cwf on(%)", ExpConfig::RestSecureFull),
         bench::customColumn("cwf off(%)", off)},
        opt);
    printOverheads(mat);
    std::cout << "The fill tail shows on latency-bound (chase) "
                 "workloads and hides on bandwidth-bound ones.\n";
    return mat;
}

bench::MatrixResult
checkElisionAblation(const bench::Options &opt)
{
    std::cout << "\n--- Ablation 5: redundant shadow-check elision "
                 "(static analysis) ---\n";
    auto elide = sim::makeSystemConfig(ExpConfig::Asan);
    elide.scheme.elideRedundantChecks = true;
    auto mat = bench::runMatrix(
        "check_elision", profiles({"bzip2", "hmmer", "xalancbmk"}),
        {bench::presetColumn("asan(%)", ExpConfig::Asan),
         bench::customColumn("asan+elide(%)", elide)},
        opt);
    printOverheads(mat);
    std::cout << "Expected: elision trims the access-validation "
                 "component wherever the generators re-check a base "
                 "register the dataflow already proved safe.\n";
    return mat;
}

bench::MatrixResult
loopOptimizerAblation(const bench::Options &opt)
{
    std::cout << "\n--- Ablation 6: loop-check hoisting + coalescing "
                 "(static analysis) ---\n";
    auto elide = sim::makeSystemConfig(ExpConfig::Asan);
    elide.scheme.elideRedundantChecks = true;
    auto hoist = elide;
    hoist.scheme.hoistLoopChecks = true;
    auto coalesce = elide;
    coalesce.scheme.coalesceChecks = true;
    auto both = hoist;
    both.scheme.coalesceChecks = true;
    // Loop-heavy streaming/scan profiles: their hot loops re-check
    // invariant bases every iteration, the hoister's best case.
    auto mat = bench::runMatrix(
        "loop_optimizer", profiles({"hmmer", "libquantum", "lbm"}),
        {bench::customColumn("elide(%)", elide),
         bench::customColumn("+hoist(%)", hoist),
         bench::customColumn("+coalesce(%)", coalesce),
         bench::customColumn("+both(%)", both)},
        opt);
    printOverheads(mat);
    std::cout << "Expected: hoisting removes per-iteration checks of "
                 "loop-invariant bases, so +hoist executes strictly "
                 "fewer dynamic check ops than elide alone.\n";
    return mat;
}

bench::MatrixResult
schemeBackendAblation(const bench::Options &opt)
{
    std::cout << "\n--- Ablation 7: protection-scheme backends "
                 "(registry sweep) ---\n";
    std::vector<bench::MatrixColumn> columns;
    for (const runtime::ProtectionScheme *ps : runtime::allSchemes()) {
        if (std::string(ps->id()) == "plain")
            continue; // the shared baseline column
        auto cfg = sim::makeSystemConfig(ExpConfig::Plain);
        cfg.scheme = ps->baseConfig();
        columns.push_back(
            bench::customColumn(std::string(ps->id()) + "(%)", cfg));
    }
    auto mat = bench::runMatrix("scheme_backends",
                                profiles({"bzip2", "gobmk", "sjeng"}),
                                columns, opt);
    printOverheads(mat);
    std::cout << "asan pays for inline shadow checks, rest for token "
                 "sprinkling/arming; mte and\npauth only pay "
                 "allocator-side tag costs (and mte's 16B granule "
                 "rounding can pack\nthe heap tighter than libc size "
                 "classes, reading as negative overhead).\n";
    return mat;
}

} // namespace

int
main(int argc, char **argv)
{
    auto opt = bench::parseOptions(argc, argv, "ablation");
    bench::installGlobalTrace(opt);
    bench::installGlobalTelemetry(opt);

    std::cout << "====================================\n"
              << "Design-choice ablations (see DESIGN.md)\n"
              << "====================================\n";
    std::vector<sim::SweepResults> sweeps;
    sweeps.push_back(lsqSerializationAblation(opt).sweep);
    sweeps.push_back(storeCommitAblation(opt).sweep);
    sweeps.push_back(quarantineSweep(opt).sweep);
    sweeps.push_back(criticalWordFirstAblation(opt).sweep);
    sweeps.push_back(checkElisionAblation(opt).sweep);
    sweeps.push_back(loopOptimizerAblation(opt).sweep);
    sweeps.push_back(schemeBackendAblation(opt).sweep);
    bench::writeResults(opt, "ablation", std::move(sweeps));
    return 0;
}
