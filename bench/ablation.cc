/**
 * @file
 * Ablation studies of the design choices DESIGN.md calls out:
 *   1. LSQ matching logic vs. serializing arm/disarm (paper §III-B:
 *      "this option, while simple to implement, can introduce
 *      significant performance penalties"),
 *   2. debug-mode delayed store commit (the entire secure/debug gap),
 *   3. critical-word-first off (precise-exception support cost),
 *   4. quarantine budget sweep (temporal-protection window vs cost).
 */

#include "bench_util.hh"
#include "sim/system.hh"

using namespace rest;
using sim::ExpConfig;

namespace
{

Cycles
measureWith(const workload::BenchProfile &base,
            const sim::SystemConfig &proto)
{
    double total = 0;
    unsigned seeds = bench::numSeeds();
    for (unsigned s = 0; s < seeds; ++s) {
        workload::BenchProfile p = base;
        p.targetKiloInsts = bench::kiloInsts();
        p.seed = base.seed + 0x1000 * s;
        sim::System system(workload::generate(p), proto);
        total += double(system.run().cycles());
    }
    return Cycles(total / seeds);
}

void
lsqSerializationAblation()
{
    std::cout << "\n--- Ablation 1: LSQ matching logic vs "
                 "serialization ---\n";
    bench::printHeader({"matching(%)", "serialized(%)"});
    for (const char *name : {"xalancbmk", "gcc", "gobmk"}) {
        auto p = workload::profileByName(name);
        Cycles base = bench::measure(p, ExpConfig::Plain);
        auto cfg = sim::makeSystemConfig(ExpConfig::RestSecureFull);
        Cycles matching = measureWith(p, cfg);
        cfg.cpuConfig.serializeRestOps = true;
        Cycles serialized = measureWith(p, cfg);
        bench::printRow(name, {sim::overheadPct(base, matching),
                               sim::overheadPct(base, serialized)});
    }
    std::cout << "Expected: serialization costs strictly more, "
                 "especially with frequent arm/disarm.\n";
}

void
storeCommitAblation()
{
    std::cout << "\n--- Ablation 2: delayed store commit in "
                 "isolation ---\n";
    bench::printHeader({"secure(%)", "sec+delay(%)", "debug(%)"});
    for (const char *name : {"xalancbmk", "soplex", "lbm"}) {
        auto p = workload::profileByName(name);
        Cycles base = bench::measure(p, ExpConfig::Plain);
        Cycles secure = bench::measure(p, ExpConfig::RestSecureFull);
        // Secure mode with only the delayed-store-commit change.
        auto cfg = sim::makeSystemConfig(ExpConfig::RestSecureFull);
        cfg.cpuConfig.delayStoreCommit = true;
        Cycles delayed = measureWith(p, cfg);
        Cycles debug = bench::measure(p, ExpConfig::RestDebugFull);
        bench::printRow(name, {sim::overheadPct(base, secure),
                               sim::overheadPct(base, delayed),
                               sim::overheadPct(base, debug)});
    }
    std::cout << "Expected: delayed store commit accounts for nearly "
                 "the whole secure->debug gap.\n";
}

void
quarantineSweep()
{
    std::cout << "\n--- Ablation 3: quarantine budget sweep "
                 "(xalancbmk, secure heap) ---\n";
    bench::printHeader({"64KiB(%)", "256KiB(%)", "1MiB(%)",
                        "4MiB(%)"});
    auto p = workload::profileByName("xalancbmk");
    Cycles base = bench::measure(p, ExpConfig::Plain);
    std::vector<double> row;
    for (std::size_t budget : {64ul << 10, 256ul << 10, 1ul << 20,
                               4ul << 20}) {
        auto cfg = sim::makeSystemConfig(ExpConfig::RestSecureHeap);
        cfg.scheme.quarantineBudget = budget;
        row.push_back(sim::overheadPct(base, measureWith(p, cfg)));
    }
    bench::printRow("xalancbmk", row);
    std::cout << "Larger budgets widen the UAF detection window; the "
                 "cost moves with drain/recycle behaviour.\n";
}

void
criticalWordFirstAblation()
{
    std::cout << "\n--- Ablation 4: critical-word-first off "
                 "(precise-exception support, SIII-B) ---\n";
    bench::printHeader({"cwf on(%)", "cwf off(%)"});
    for (const char *name : {"astar", "libquantum"}) {
        auto p = workload::profileByName(name);
        Cycles base = bench::measure(p, ExpConfig::Plain);
        auto cfg = sim::makeSystemConfig(ExpConfig::RestSecureFull);
        Cycles on = measureWith(p, cfg);
        cfg.cpuConfig.criticalWordFirst = false;
        Cycles off = measureWith(p, cfg);
        bench::printRow(name, {sim::overheadPct(base, on),
                               sim::overheadPct(base, off)});
    }
    std::cout << "The fill tail shows on latency-bound (chase) "
                 "workloads and hides on bandwidth-bound ones.\n";
}

} // namespace

int
main()
{
    std::cout << "====================================\n"
              << "Design-choice ablations (see DESIGN.md)\n"
              << "====================================\n";
    lsqSerializationAblation();
    storeCommitAblation();
    quarantineSweep();
    criticalWordFirstAblation();
    return 0;
}
