/**
 * @file
 * Reproduces paper Figure 7: runtime overheads of ASan and of REST in
 * debug, secure and perfect-hardware modes, for full (stack + heap)
 * and heap-only protection, per benchmark, plus the weighted
 * arithmetic mean (footnote 5) and geometric mean (footnote 6).
 *
 * The benchmark × configuration matrix runs on the parallel sweep
 * runner (--jobs N); results are written to BENCH_fig7.json.
 *
 * Pass --detail to additionally print the §VI-B microarchitectural
 * effects for xalancbmk (ROB-blocked-by-store and IQ-full cycles in
 * secure vs debug mode, and token traffic).
 */

#include "bench_util.hh"
#include "sim/system.hh"

using namespace rest;
using sim::ExpConfig;

namespace
{

void
detailXalancbmk()
{
    std::cout << "\n--- SVI-B detail: xalancbmk secure vs debug ---\n";
    for (auto config : {ExpConfig::RestSecureFull,
                        ExpConfig::RestDebugFull}) {
        auto p = workload::profileByName("xalancbmk");
        p.targetKiloInsts = bench::kiloInsts();
        sim::Measurement m = sim::runBench(p, config);
        double kinst = double(m.ops) / 1000.0;
        std::cout << sim::expConfigName(config) << ":\n"
                  << "  rob_store_blocked_cycles = "
                  << m.scalars["o3cpu.rob_store_blocked_cycles"] << "\n"
                  << "  iq_full_stall_cycles     = "
                  << m.scalars["o3cpu.iq_full_stall_cycles"] << "\n"
                  << "  tokens evicted L1->L2 per kinst = "
                  << double(m.scalars["l1d.token_evictions"]) / kinst
                  << "\n";
    }
}

/**
 * The --perf probe: simulator throughput (simulated KIPS of host
 * wall-clock) for each execution mode on one benchmark under Secure
 * Full. Measures the simulator itself, so one run per mode, no seed
 * averaging; the fast-functional and sampled speedups land in the
 * results JSON for CI's perf-smoke job to assert against.
 */
sim::PerfRecord
perfProbe()
{
    const char *probe_bench = "xalancbmk";
    auto p = workload::profileByName(probe_bench);

    sim::ExecutionConfig fast;
    fast.fastFunctional = true;
    sim::ExecutionConfig sampled;
    sampled.sampling.intervalOps = 100000;

    sim::PerfRecord perf;
    perf.bench = probe_bench;
    perf.kiloInsts = bench::kiloInsts();
    // 5 timed reps per mode: the host is shared, so the best-of
    // estimate needs a few samples to find an uncontended window.
    perf.kipsDetailed =
        bench::measureKips(p, ExpConfig::RestSecureFull, {}, 5);
    perf.kipsFastFunctional =
        bench::measureKips(p, ExpConfig::RestSecureFull, fast, 5);
    perf.kipsSampled =
        bench::measureKips(p, ExpConfig::RestSecureFull, sampled, 5);
    if (perf.kipsDetailed > 0) {
        perf.speedupFastFunctional =
            perf.kipsFastFunctional / perf.kipsDetailed;
        perf.speedupSampled = perf.kipsSampled / perf.kipsDetailed;
    }

    std::cout << "\n--- simulator throughput (" << probe_bench
              << ", Secure Full, " << perf.kiloInsts << " kinst) ---\n"
              << std::fixed << std::setprecision(1)
              << "detailed:        " << perf.kipsDetailed << " KIPS\n"
              << "fast-functional: " << perf.kipsFastFunctional
              << " KIPS (" << perf.speedupFastFunctional << "x)\n"
              << "sampled:         " << perf.kipsSampled << " KIPS ("
              << perf.speedupSampled << "x)\n";
    return perf;
}

} // namespace

int
main(int argc, char **argv)
{
    auto opt = bench::parseOptions(argc, argv, "fig7");
    bench::installGlobalTrace(opt);
    bench::installGlobalTelemetry(opt);

    std::cout << "==============================================\n"
              << "Figure 7: runtime overheads over plain (%)\n"
              << "==============================================\n";

    // ASan with statically redundant shadow checks deleted
    // (analysis/elide_checks.hh) — same detection coverage, fewer
    // dynamic instructions.
    sim::SystemConfig asan_elide =
        sim::makeSystemConfig(ExpConfig::Asan);
    asan_elide.scheme.elideRedundantChecks = true;

    // ... plus the loop optimizer: invariant checks hoisted to
    // preheaders (analysis/hoist_checks.hh) and adjacent shadow
    // windows coalesced (analysis/coalesce_checks.hh).
    sim::SystemConfig asan_opt = asan_elide;
    asan_opt.scheme.hoistLoopChecks = true;
    asan_opt.scheme.coalesceChecks = true;

    const std::vector<bench::MatrixColumn> columns = {
        bench::presetColumn("ASan", ExpConfig::Asan),
        bench::customColumn("ASanElide", asan_elide),
        bench::customColumn("ASanOpt", asan_opt),
        bench::presetColumn("DebugFull", ExpConfig::RestDebugFull),
        bench::presetColumn("SecureFull", ExpConfig::RestSecureFull),
        bench::presetColumn("PerfectHWFull", ExpConfig::PerfectHwFull),
        bench::presetColumn("DebugHeap", ExpConfig::RestDebugHeap),
        bench::presetColumn("SecureHeap", ExpConfig::RestSecureHeap),
        bench::presetColumn("PerfectHWHeap", ExpConfig::PerfectHwHeap),
    };

    auto mat = bench::runMatrix("overheads", workload::specSuite(),
                                columns, opt);
    bench::printOverheadTable(mat);

    std::cout << "\nPaper reference (WtdAriMean): ASan ~40%+ "
                 "(outliers to 450%), Debug ~25%, Secure ~2%, "
                 "PerfectHW within 0.2% of Secure;\nfull vs heap "
                 "differ by ~0.16% on average.\n";

    sim::PerfRecord perf;
    if (opt.perfProbe)
        perf = perfProbe();
    bench::writeResults(opt, "fig7", {std::move(mat.sweep)}, perf);

    if (opt.detail)
        detailXalancbmk();
    return 0;
}
