/**
 * @file
 * Reproduces paper Figure 7: runtime overheads of ASan and of REST in
 * debug, secure and perfect-hardware modes, for full (stack + heap)
 * and heap-only protection, per benchmark, plus the weighted
 * arithmetic mean (footnote 5) and geometric mean (footnote 6).
 *
 * Pass --detail to additionally print the §VI-B microarchitectural
 * effects for xalancbmk (ROB-blocked-by-store and IQ-full cycles in
 * secure vs debug mode, and token traffic).
 */

#include <cstring>

#include "bench_util.hh"
#include "sim/system.hh"

using namespace rest;
using bench::measure;
using sim::ExpConfig;

namespace
{

void
detailXalancbmk()
{
    std::cout << "\n--- SVI-B detail: xalancbmk secure vs debug ---\n";
    for (auto config : {ExpConfig::RestSecureFull,
                        ExpConfig::RestDebugFull}) {
        auto p = workload::profileByName("xalancbmk");
        p.targetKiloInsts = bench::kiloInsts();
        sim::System system(workload::generate(p),
                           sim::makeSystemConfig(config));
        auto r = system.run();
        const auto &cpu = system.cpuStats();
        const auto &l1d = system.dcache().statGroup();
        double kinst = double(r.run.committedOps) / 1000.0;
        std::cout << sim::expConfigName(config) << ":\n"
                  << "  rob_store_blocked_cycles = "
                  << cpu.scalarValue("rob_store_blocked_cycles") << "\n"
                  << "  iq_full_stall_cycles     = "
                  << cpu.scalarValue("iq_full_stall_cycles") << "\n"
                  << "  tokens evicted L1->L2 per kinst = "
                  << double(l1d.scalarValue("token_evictions")) / kinst
                  << "\n";
    }
}

} // namespace

int
main(int argc, char **argv)
{
    std::cout << "==============================================\n"
              << "Figure 7: runtime overheads over plain (%)\n"
              << "==============================================\n";

    const std::vector<std::pair<ExpConfig, std::string>> configs = {
        {ExpConfig::Asan, "ASan"},
        {ExpConfig::RestDebugFull, "DebugFull"},
        {ExpConfig::RestSecureFull, "SecureFull"},
        {ExpConfig::PerfectHwFull, "PerfectHWFull"},
        {ExpConfig::RestDebugHeap, "DebugHeap"},
        {ExpConfig::RestSecureHeap, "SecureHeap"},
        {ExpConfig::PerfectHwHeap, "PerfectHWHeap"},
    };

    std::vector<std::string> headers;
    for (auto &[cfg, name] : configs)
        headers.push_back(name);
    bench::printHeader(headers);

    std::vector<Cycles> plain;
    std::vector<std::vector<Cycles>> scheme(configs.size());

    for (const auto &profile : workload::specSuite()) {
        Cycles base = measure(profile, ExpConfig::Plain);
        plain.push_back(base);
        std::vector<double> row;
        for (std::size_t c = 0; c < configs.size(); ++c) {
            Cycles cycles = measure(profile, configs[c].first);
            scheme[c].push_back(cycles);
            row.push_back(sim::overheadPct(base, cycles));
        }
        bench::printRow(profile.name, row);
    }

    std::vector<double> wtd, geo;
    for (std::size_t c = 0; c < configs.size(); ++c) {
        wtd.push_back(sim::wtdAriMeanOverheadPct(plain, scheme[c]));
        geo.push_back(sim::geoMeanOverheadPct(plain, scheme[c]));
    }
    std::cout << std::string(12 + 16 * configs.size(), '-') << "\n";
    bench::printRow("WtdAriMean", wtd);
    bench::printRow("GeoMean", geo);

    std::cout << "\nPaper reference (WtdAriMean): ASan ~40%+ "
                 "(outliers to 450%), Debug ~25%, Secure ~2%, "
                 "PerfectHW within 0.2% of Secure;\nfull vs heap "
                 "differ by ~0.16% on average.\n";

    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--detail") == 0)
            detailXalancbmk();
    }
    return 0;
}
