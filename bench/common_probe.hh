/**
 * @file
 * Empirical probes backing the REST row of the Table III harness:
 * each claim the paper makes about REST's protection class is checked
 * against the living implementation.
 */

#ifndef REST_BENCH_COMMON_PROBE_HH
#define REST_BENCH_COMMON_PROBE_HH

#include "isa/program.hh"
#include "sim/experiment.hh"
#include "sim/system.hh"
#include "workload/attack_scenarios.hh"

namespace rest::probe
{

struct Results
{
    bool linearCaught = false;
    bool targetedMissed = false;
    bool uafCaught = false;
    bool uafAfterRecycleMissed = false;
    bool usesShadowSpace = true;
    bool composable = false;

    bool spatialLinear = false;
    bool temporalUntilRealloc = false;

    bool
    allConsistent() const
    {
        return spatialLinear && temporalUntilRealloc &&
            !usesShadowSpace && composable;
    }
};

/**
 * A targeted (pointer-corruption style) access that jumps clean over
 * the redzones from one allocation's payload into another's: the
 * tripwire approach does not see it (Table III: "Linear" spatial
 * protection).
 */
inline isa::Program
targetedJumpProgram()
{
    using isa::Opcode;
    isa::FuncBuilder b("main");
    // a = malloc(64); b = malloc(64)
    b.movImm(13, 64);
    b.emit({Opcode::RtMalloc, isa::noReg, 13, isa::noReg, 8, 0, -1,
            -1});
    b.mov(1, isa::regRet);
    b.emit({Opcode::RtMalloc, isa::noReg, 13, isa::noReg, 8, 0, -1,
            -1});
    b.mov(2, isa::regRet);
    // Corrupted-pointer read: a + (b - a) lands exactly in b's
    // payload, skipping both redzones.
    b.alu(Opcode::Sub, 3, 2, 1);
    b.alu(Opcode::Add, 4, 1, 3);
    b.load(5, 4, 0, 8);
    b.halt();
    isa::Program prog;
    prog.funcs.push_back(std::move(b).take());
    return prog;
}

/**
 * UAF after the chunk has left quarantine and been recycled: the
 * dangling access hits a live allocation and goes undetected
 * (Table III: temporal protection "until realloc").
 */
inline isa::Program
uafAfterRecycleProgram()
{
    using isa::Opcode;
    isa::FuncBuilder b("main");
    b.movImm(13, 96);
    b.emit({Opcode::RtMalloc, isa::noReg, 13, isa::noReg, 8, 0, -1,
            -1});
    b.mov(1, isa::regRet); // the dangling pointer
    b.emit({Opcode::RtFree, isa::noReg, 1, isa::noReg, 8, 0, -1, -1});
    // Churn until the quarantine recycles the chunk.
    b.movImm(2, 80);
    int loop = b.here();
    b.movImm(13, 96);
    b.emit({Opcode::RtMalloc, isa::noReg, 13, isa::noReg, 8, 0, -1,
            -1});
    b.mov(3, isa::regRet);
    b.emit({Opcode::RtFree, isa::noReg, 3, isa::noReg, 8, 0, -1, -1});
    b.addI(2, 2, -1);
    b.branch(Opcode::Bne, 2, isa::regZero, loop);
    // One live allocation that (very likely) recycles the chunk.
    b.movImm(13, 96);
    b.emit({Opcode::RtMalloc, isa::noReg, 13, isa::noReg, 8, 0, -1,
            -1});
    // The dangling access.
    b.load(4, 1, 0, 8);
    b.halt();
    isa::Program prog;
    prog.funcs.push_back(std::move(b).take());
    return prog;
}

/** Run all probes against the REST implementation. */
inline Results
probeRest()
{
    Results res;
    auto heap_cfg = sim::makeSystemConfig(sim::ExpConfig::RestSecureHeap);

    { // Linear overflow: caught.
        sim::System s(workload::attacks::heapOverflowWrite(64, 32),
                      heap_cfg);
        res.linearCaught = s.run().faulted();
    }
    { // Targeted jump: missed (by design of tripwires).
        sim::System s(targetedJumpProgram(), heap_cfg);
        res.targetedMissed = !s.run().faulted();
    }
    { // UAF while quarantined: caught.
        sim::System s(workload::attacks::useAfterFree(96), heap_cfg);
        res.uafCaught = s.run().faulted();
    }
    { // UAF after recycling: missed.
        auto cfg = heap_cfg;
        cfg.scheme.quarantineBudget = 2048; // drain quickly
        sim::System s(uafAfterRecycleProgram(), cfg);
        res.uafAfterRecycleMissed = !s.run().faulted();
    }
    { // Shadow space: no page of the shadow region is ever touched.
        sim::System s(workload::attacks::heapOverflowWrite(64, 4),
                      heap_cfg);
        s.run();
        res.usesShadowSpace =
            s.memory().pagesTouchedIn(
                runtime::AddressMap::shadowBase,
                runtime::AddressMap::shadowBase + (1ull << 44)) != 0;
    }
    { // Composability: detection inside uninstrumented library code
      // (the memcpy copy loop) with zero program instrumentation.
        sim::System s(workload::attacks::heartbleed(64, 256),
                      heap_cfg);
        res.composable = s.run().faulted();
    }

    res.spatialLinear = res.linearCaught && res.targetedMissed;
    res.temporalUntilRealloc =
        res.uafCaught && res.uafAfterRecycleMissed;
    return res;
}

} // namespace rest::probe

#endif // REST_BENCH_COMMON_PROBE_HH
