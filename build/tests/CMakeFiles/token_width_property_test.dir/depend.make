# Empty dependencies file for token_width_property_test.
# This may be replaced when dependencies are built.
