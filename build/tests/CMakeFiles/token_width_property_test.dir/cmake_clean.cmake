file(REMOVE_RECURSE
  "CMakeFiles/token_width_property_test.dir/integration/token_width_property_test.cc.o"
  "CMakeFiles/token_width_property_test.dir/integration/token_width_property_test.cc.o.d"
  "token_width_property_test"
  "token_width_property_test.pdb"
  "token_width_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/token_width_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
