file(REMOVE_RECURSE
  "CMakeFiles/interceptors_test.dir/runtime/interceptors_test.cc.o"
  "CMakeFiles/interceptors_test.dir/runtime/interceptors_test.cc.o.d"
  "interceptors_test"
  "interceptors_test.pdb"
  "interceptors_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interceptors_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
