# Empty dependencies file for interceptors_test.
# This may be replaced when dependencies are built.
