file(REMOVE_RECURSE
  "CMakeFiles/rest_engine_test.dir/core/rest_engine_test.cc.o"
  "CMakeFiles/rest_engine_test.dir/core/rest_engine_test.cc.o.d"
  "rest_engine_test"
  "rest_engine_test.pdb"
  "rest_engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rest_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
