# Empty dependencies file for rest_engine_test.
# This may be replaced when dependencies are built.
