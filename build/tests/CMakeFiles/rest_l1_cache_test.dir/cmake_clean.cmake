file(REMOVE_RECURSE
  "CMakeFiles/rest_l1_cache_test.dir/mem/rest_l1_cache_test.cc.o"
  "CMakeFiles/rest_l1_cache_test.dir/mem/rest_l1_cache_test.cc.o.d"
  "rest_l1_cache_test"
  "rest_l1_cache_test.pdb"
  "rest_l1_cache_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rest_l1_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
