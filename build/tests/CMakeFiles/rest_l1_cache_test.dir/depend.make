# Empty dependencies file for rest_l1_cache_test.
# This may be replaced when dependencies are built.
