# Empty dependencies file for fuzz_schemes_test.
# This may be replaced when dependencies are built.
