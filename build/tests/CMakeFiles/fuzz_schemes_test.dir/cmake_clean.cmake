file(REMOVE_RECURSE
  "CMakeFiles/fuzz_schemes_test.dir/integration/fuzz_schemes_test.cc.o"
  "CMakeFiles/fuzz_schemes_test.dir/integration/fuzz_schemes_test.cc.o.d"
  "fuzz_schemes_test"
  "fuzz_schemes_test.pdb"
  "fuzz_schemes_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzz_schemes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
