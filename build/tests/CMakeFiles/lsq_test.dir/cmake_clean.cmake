file(REMOVE_RECURSE
  "CMakeFiles/lsq_test.dir/cpu/lsq_test.cc.o"
  "CMakeFiles/lsq_test.dir/cpu/lsq_test.cc.o.d"
  "lsq_test"
  "lsq_test.pdb"
  "lsq_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsq_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
