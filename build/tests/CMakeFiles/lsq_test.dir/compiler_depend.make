# Empty compiler generated dependencies file for lsq_test.
# This may be replaced when dependencies are built.
