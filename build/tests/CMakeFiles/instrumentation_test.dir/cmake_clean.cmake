file(REMOVE_RECURSE
  "CMakeFiles/instrumentation_test.dir/runtime/instrumentation_test.cc.o"
  "CMakeFiles/instrumentation_test.dir/runtime/instrumentation_test.cc.o.d"
  "instrumentation_test"
  "instrumentation_test.pdb"
  "instrumentation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/instrumentation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
