# Empty dependencies file for instrumentation_test.
# This may be replaced when dependencies are built.
