file(REMOVE_RECURSE
  "CMakeFiles/inorder_cpu_test.dir/cpu/inorder_cpu_test.cc.o"
  "CMakeFiles/inorder_cpu_test.dir/cpu/inorder_cpu_test.cc.o.d"
  "inorder_cpu_test"
  "inorder_cpu_test.pdb"
  "inorder_cpu_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inorder_cpu_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
