# Empty compiler generated dependencies file for inorder_cpu_test.
# This may be replaced when dependencies are built.
