file(REMOVE_RECURSE
  "CMakeFiles/attack_scenarios_test.dir/workload/attack_scenarios_test.cc.o"
  "CMakeFiles/attack_scenarios_test.dir/workload/attack_scenarios_test.cc.o.d"
  "attack_scenarios_test"
  "attack_scenarios_test.pdb"
  "attack_scenarios_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attack_scenarios_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
