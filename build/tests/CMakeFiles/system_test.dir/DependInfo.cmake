
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/system_test.cc" "tests/CMakeFiles/system_test.dir/sim/system_test.cc.o" "gcc" "tests/CMakeFiles/system_test.dir/sim/system_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/rest_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/rest_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/rest_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/rest_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/rest_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/rest_core.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/rest_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rest_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
