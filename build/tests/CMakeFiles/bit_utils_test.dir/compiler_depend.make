# Empty compiler generated dependencies file for bit_utils_test.
# This may be replaced when dependencies are built.
