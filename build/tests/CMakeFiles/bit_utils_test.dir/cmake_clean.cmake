file(REMOVE_RECURSE
  "CMakeFiles/bit_utils_test.dir/util/bit_utils_test.cc.o"
  "CMakeFiles/bit_utils_test.dir/util/bit_utils_test.cc.o.d"
  "bit_utils_test"
  "bit_utils_test.pdb"
  "bit_utils_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bit_utils_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
