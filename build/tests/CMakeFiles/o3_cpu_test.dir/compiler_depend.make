# Empty compiler generated dependencies file for o3_cpu_test.
# This may be replaced when dependencies are built.
