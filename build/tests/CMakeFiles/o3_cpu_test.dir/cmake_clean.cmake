file(REMOVE_RECURSE
  "CMakeFiles/o3_cpu_test.dir/cpu/o3_cpu_test.cc.o"
  "CMakeFiles/o3_cpu_test.dir/cpu/o3_cpu_test.cc.o.d"
  "o3_cpu_test"
  "o3_cpu_test.pdb"
  "o3_cpu_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/o3_cpu_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
