file(REMOVE_RECURSE
  "CMakeFiles/token_detector_test.dir/mem/token_detector_test.cc.o"
  "CMakeFiles/token_detector_test.dir/mem/token_detector_test.cc.o.d"
  "token_detector_test"
  "token_detector_test.pdb"
  "token_detector_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/token_detector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
