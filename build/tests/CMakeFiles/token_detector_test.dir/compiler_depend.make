# Empty compiler generated dependencies file for token_detector_test.
# This may be replaced when dependencies are built.
