# Empty dependencies file for table1_semantics_test.
# This may be replaced when dependencies are built.
