file(REMOVE_RECURSE
  "CMakeFiles/table1_semantics_test.dir/integration/table1_semantics_test.cc.o"
  "CMakeFiles/table1_semantics_test.dir/integration/table1_semantics_test.cc.o.d"
  "table1_semantics_test"
  "table1_semantics_test.pdb"
  "table1_semantics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_semantics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
