file(REMOVE_RECURSE
  "CMakeFiles/spec_profiles_test.dir/workload/spec_profiles_test.cc.o"
  "CMakeFiles/spec_profiles_test.dir/workload/spec_profiles_test.cc.o.d"
  "spec_profiles_test"
  "spec_profiles_test.pdb"
  "spec_profiles_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spec_profiles_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
