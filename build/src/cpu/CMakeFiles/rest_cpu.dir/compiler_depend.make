# Empty compiler generated dependencies file for rest_cpu.
# This may be replaced when dependencies are built.
