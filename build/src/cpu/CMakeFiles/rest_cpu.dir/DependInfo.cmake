
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cpu/bpred.cc" "src/cpu/CMakeFiles/rest_cpu.dir/bpred.cc.o" "gcc" "src/cpu/CMakeFiles/rest_cpu.dir/bpred.cc.o.d"
  "/root/repo/src/cpu/inorder_cpu.cc" "src/cpu/CMakeFiles/rest_cpu.dir/inorder_cpu.cc.o" "gcc" "src/cpu/CMakeFiles/rest_cpu.dir/inorder_cpu.cc.o.d"
  "/root/repo/src/cpu/o3_cpu.cc" "src/cpu/CMakeFiles/rest_cpu.dir/o3_cpu.cc.o" "gcc" "src/cpu/CMakeFiles/rest_cpu.dir/o3_cpu.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rest_util.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/rest_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/rest_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/rest_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
