file(REMOVE_RECURSE
  "librest_cpu.a"
)
