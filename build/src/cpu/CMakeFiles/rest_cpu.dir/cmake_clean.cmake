file(REMOVE_RECURSE
  "CMakeFiles/rest_cpu.dir/bpred.cc.o"
  "CMakeFiles/rest_cpu.dir/bpred.cc.o.d"
  "CMakeFiles/rest_cpu.dir/inorder_cpu.cc.o"
  "CMakeFiles/rest_cpu.dir/inorder_cpu.cc.o.d"
  "CMakeFiles/rest_cpu.dir/o3_cpu.cc.o"
  "CMakeFiles/rest_cpu.dir/o3_cpu.cc.o.d"
  "librest_cpu.a"
  "librest_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rest_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
