file(REMOVE_RECURSE
  "CMakeFiles/rest_sim.dir/emulator.cc.o"
  "CMakeFiles/rest_sim.dir/emulator.cc.o.d"
  "CMakeFiles/rest_sim.dir/experiment.cc.o"
  "CMakeFiles/rest_sim.dir/experiment.cc.o.d"
  "CMakeFiles/rest_sim.dir/system.cc.o"
  "CMakeFiles/rest_sim.dir/system.cc.o.d"
  "librest_sim.a"
  "librest_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rest_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
