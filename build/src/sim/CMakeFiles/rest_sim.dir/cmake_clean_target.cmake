file(REMOVE_RECURSE
  "librest_sim.a"
)
