# Empty dependencies file for rest_sim.
# This may be replaced when dependencies are built.
