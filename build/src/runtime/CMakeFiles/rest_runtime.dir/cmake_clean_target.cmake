file(REMOVE_RECURSE
  "librest_runtime.a"
)
