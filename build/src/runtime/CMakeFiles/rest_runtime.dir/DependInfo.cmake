
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/asan_allocator.cc" "src/runtime/CMakeFiles/rest_runtime.dir/asan_allocator.cc.o" "gcc" "src/runtime/CMakeFiles/rest_runtime.dir/asan_allocator.cc.o.d"
  "/root/repo/src/runtime/instrumentation.cc" "src/runtime/CMakeFiles/rest_runtime.dir/instrumentation.cc.o" "gcc" "src/runtime/CMakeFiles/rest_runtime.dir/instrumentation.cc.o.d"
  "/root/repo/src/runtime/interceptors.cc" "src/runtime/CMakeFiles/rest_runtime.dir/interceptors.cc.o" "gcc" "src/runtime/CMakeFiles/rest_runtime.dir/interceptors.cc.o.d"
  "/root/repo/src/runtime/libc_allocator.cc" "src/runtime/CMakeFiles/rest_runtime.dir/libc_allocator.cc.o" "gcc" "src/runtime/CMakeFiles/rest_runtime.dir/libc_allocator.cc.o.d"
  "/root/repo/src/runtime/rest_allocator.cc" "src/runtime/CMakeFiles/rest_runtime.dir/rest_allocator.cc.o" "gcc" "src/runtime/CMakeFiles/rest_runtime.dir/rest_allocator.cc.o.d"
  "/root/repo/src/runtime/runtime_config.cc" "src/runtime/CMakeFiles/rest_runtime.dir/runtime_config.cc.o" "gcc" "src/runtime/CMakeFiles/rest_runtime.dir/runtime_config.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rest_util.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/rest_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/rest_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/rest_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
