# Empty compiler generated dependencies file for rest_runtime.
# This may be replaced when dependencies are built.
