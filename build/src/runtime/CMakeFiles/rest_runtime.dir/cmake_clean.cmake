file(REMOVE_RECURSE
  "CMakeFiles/rest_runtime.dir/asan_allocator.cc.o"
  "CMakeFiles/rest_runtime.dir/asan_allocator.cc.o.d"
  "CMakeFiles/rest_runtime.dir/instrumentation.cc.o"
  "CMakeFiles/rest_runtime.dir/instrumentation.cc.o.d"
  "CMakeFiles/rest_runtime.dir/interceptors.cc.o"
  "CMakeFiles/rest_runtime.dir/interceptors.cc.o.d"
  "CMakeFiles/rest_runtime.dir/libc_allocator.cc.o"
  "CMakeFiles/rest_runtime.dir/libc_allocator.cc.o.d"
  "CMakeFiles/rest_runtime.dir/rest_allocator.cc.o"
  "CMakeFiles/rest_runtime.dir/rest_allocator.cc.o.d"
  "CMakeFiles/rest_runtime.dir/runtime_config.cc.o"
  "CMakeFiles/rest_runtime.dir/runtime_config.cc.o.d"
  "librest_runtime.a"
  "librest_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rest_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
