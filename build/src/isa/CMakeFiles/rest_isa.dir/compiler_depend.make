# Empty compiler generated dependencies file for rest_isa.
# This may be replaced when dependencies are built.
