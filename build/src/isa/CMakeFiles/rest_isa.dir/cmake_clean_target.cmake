file(REMOVE_RECURSE
  "librest_isa.a"
)
