file(REMOVE_RECURSE
  "CMakeFiles/rest_isa.dir/opcode.cc.o"
  "CMakeFiles/rest_isa.dir/opcode.cc.o.d"
  "CMakeFiles/rest_isa.dir/program.cc.o"
  "CMakeFiles/rest_isa.dir/program.cc.o.d"
  "librest_isa.a"
  "librest_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rest_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
