file(REMOVE_RECURSE
  "librest_workload.a"
)
