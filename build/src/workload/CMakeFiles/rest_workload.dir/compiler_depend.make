# Empty compiler generated dependencies file for rest_workload.
# This may be replaced when dependencies are built.
