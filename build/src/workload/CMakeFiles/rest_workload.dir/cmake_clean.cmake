file(REMOVE_RECURSE
  "CMakeFiles/rest_workload.dir/attack_scenarios.cc.o"
  "CMakeFiles/rest_workload.dir/attack_scenarios.cc.o.d"
  "CMakeFiles/rest_workload.dir/spec_profiles.cc.o"
  "CMakeFiles/rest_workload.dir/spec_profiles.cc.o.d"
  "librest_workload.a"
  "librest_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rest_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
