file(REMOVE_RECURSE
  "CMakeFiles/rest_core.dir/exceptions.cc.o"
  "CMakeFiles/rest_core.dir/exceptions.cc.o.d"
  "librest_core.a"
  "librest_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rest_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
