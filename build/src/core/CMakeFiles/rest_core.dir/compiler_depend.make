# Empty compiler generated dependencies file for rest_core.
# This may be replaced when dependencies are built.
