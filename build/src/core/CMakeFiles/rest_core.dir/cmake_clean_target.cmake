file(REMOVE_RECURSE
  "librest_core.a"
)
