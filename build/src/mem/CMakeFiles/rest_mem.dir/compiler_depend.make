# Empty compiler generated dependencies file for rest_mem.
# This may be replaced when dependencies are built.
