file(REMOVE_RECURSE
  "librest_mem.a"
)
