file(REMOVE_RECURSE
  "CMakeFiles/rest_mem.dir/cache.cc.o"
  "CMakeFiles/rest_mem.dir/cache.cc.o.d"
  "CMakeFiles/rest_mem.dir/rest_l1_cache.cc.o"
  "CMakeFiles/rest_mem.dir/rest_l1_cache.cc.o.d"
  "librest_mem.a"
  "librest_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rest_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
