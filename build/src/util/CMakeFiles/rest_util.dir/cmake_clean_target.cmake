file(REMOVE_RECURSE
  "librest_util.a"
)
