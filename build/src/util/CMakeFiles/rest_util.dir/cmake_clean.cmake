file(REMOVE_RECURSE
  "CMakeFiles/rest_util.dir/logging.cc.o"
  "CMakeFiles/rest_util.dir/logging.cc.o.d"
  "CMakeFiles/rest_util.dir/stats.cc.o"
  "CMakeFiles/rest_util.dir/stats.cc.o.d"
  "librest_util.a"
  "librest_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rest_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
