# Empty dependencies file for rest_util.
# This may be replaced when dependencies are built.
