file(REMOVE_RECURSE
  "CMakeFiles/legacy_binary.dir/legacy_binary.cc.o"
  "CMakeFiles/legacy_binary.dir/legacy_binary.cc.o.d"
  "legacy_binary"
  "legacy_binary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/legacy_binary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
