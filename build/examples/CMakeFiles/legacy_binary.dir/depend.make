# Empty dependencies file for legacy_binary.
# This may be replaced when dependencies are built.
