# Empty compiler generated dependencies file for token_width_tuning.
# This may be replaced when dependencies are built.
