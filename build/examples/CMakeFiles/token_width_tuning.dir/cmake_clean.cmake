file(REMOVE_RECURSE
  "CMakeFiles/token_width_tuning.dir/token_width_tuning.cc.o"
  "CMakeFiles/token_width_tuning.dir/token_width_tuning.cc.o.d"
  "token_width_tuning"
  "token_width_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/token_width_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
