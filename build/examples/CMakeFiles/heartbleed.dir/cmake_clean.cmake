file(REMOVE_RECURSE
  "CMakeFiles/heartbleed.dir/heartbleed.cc.o"
  "CMakeFiles/heartbleed.dir/heartbleed.cc.o.d"
  "heartbleed"
  "heartbleed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heartbleed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
