# Empty compiler generated dependencies file for heartbleed.
# This may be replaced when dependencies are built.
