file(REMOVE_RECURSE
  "CMakeFiles/use_after_free.dir/use_after_free.cc.o"
  "CMakeFiles/use_after_free.dir/use_after_free.cc.o.d"
  "use_after_free"
  "use_after_free.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/use_after_free.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
