# Empty dependencies file for use_after_free.
# This may be replaced when dependencies are built.
