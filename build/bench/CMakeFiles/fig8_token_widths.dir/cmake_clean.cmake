file(REMOVE_RECURSE
  "CMakeFiles/fig8_token_widths.dir/fig8_token_widths.cc.o"
  "CMakeFiles/fig8_token_widths.dir/fig8_token_widths.cc.o.d"
  "fig8_token_widths"
  "fig8_token_widths.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_token_widths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
