# Empty dependencies file for fig8_token_widths.
# This may be replaced when dependencies are built.
