file(REMOVE_RECURSE
  "CMakeFiles/tab2_config.dir/tab2_config.cc.o"
  "CMakeFiles/tab2_config.dir/tab2_config.cc.o.d"
  "tab2_config"
  "tab2_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab2_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
