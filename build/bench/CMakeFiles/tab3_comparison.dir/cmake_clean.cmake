file(REMOVE_RECURSE
  "CMakeFiles/tab3_comparison.dir/tab3_comparison.cc.o"
  "CMakeFiles/tab3_comparison.dir/tab3_comparison.cc.o.d"
  "tab3_comparison"
  "tab3_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab3_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
