# Empty compiler generated dependencies file for tab3_comparison.
# This may be replaced when dependencies are built.
