# Empty dependencies file for fig3_asan_breakdown.
# This may be replaced when dependencies are built.
