file(REMOVE_RECURSE
  "CMakeFiles/fig7_overheads.dir/fig7_overheads.cc.o"
  "CMakeFiles/fig7_overheads.dir/fig7_overheads.cc.o.d"
  "fig7_overheads"
  "fig7_overheads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_overheads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
