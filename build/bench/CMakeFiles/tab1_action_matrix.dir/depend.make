# Empty dependencies file for tab1_action_matrix.
# This may be replaced when dependencies are built.
